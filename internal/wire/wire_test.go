package wire

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"bees/internal/features"
)

func randomSet(rng *rand.Rand, n int) *features.BinarySet {
	s := &features.BinarySet{Descriptors: make([]features.Descriptor, n)}
	for i := range s.Descriptors {
		for w := 0; w < 4; w++ {
			s.Descriptors[i][w] = rng.Uint64()
		}
	}
	return s
}

func roundTrip(t *testing.T, msg any) any {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteFrame(&buf, msg); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	out, err := ReadFrame(&buf)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	return out
}

func TestQueryRequestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	req := &QueryRequest{Sets: []*features.BinarySet{
		randomSet(rng, 3), randomSet(rng, 0), randomSet(rng, 7),
	}}
	got := roundTrip(t, req).(*QueryRequest)
	if len(got.Sets) != 3 {
		t.Fatalf("got %d sets", len(got.Sets))
	}
	for i, s := range got.Sets {
		if s.Len() != req.Sets[i].Len() {
			t.Fatalf("set %d length mismatch", i)
		}
		for j := range s.Descriptors {
			if s.Descriptors[j] != req.Sets[i].Descriptors[j] {
				t.Fatalf("descriptor (%d,%d) corrupted", i, j)
			}
		}
	}
}

func TestQueryResponseRoundTrip(t *testing.T) {
	resp := &QueryResponse{MaxSims: []float64{0, 0.5, 1, 0.0133}}
	got := roundTrip(t, resp).(*QueryResponse)
	if len(got.MaxSims) != 4 {
		t.Fatalf("got %d sims", len(got.MaxSims))
	}
	for i := range got.MaxSims {
		if got.MaxSims[i] != resp.MaxSims[i] {
			t.Fatalf("sim %d corrupted: %v", i, got.MaxSims[i])
		}
	}
}

func TestUploadRequestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	req := &UploadRequest{
		Set:     randomSet(rng, 5),
		GroupID: -42,
		Lat:     48.8566,
		Lon:     2.3522,
		Blob:    []byte("compressed image payload"),
	}
	got := roundTrip(t, req).(*UploadRequest)
	if got.GroupID != -42 || got.Lat != 48.8566 || got.Lon != 2.3522 {
		t.Fatalf("metadata corrupted: %+v", got)
	}
	if !bytes.Equal(got.Blob, req.Blob) {
		t.Fatal("blob corrupted")
	}
	if got.Set.Len() != 5 {
		t.Fatal("set corrupted")
	}
}

func TestUploadRequestNilSet(t *testing.T) {
	req := &UploadRequest{GroupID: 1, Blob: []byte{1, 2, 3}}
	got := roundTrip(t, req).(*UploadRequest)
	if got.Set.Len() != 0 {
		t.Fatal("nil set should decode empty")
	}
	if len(got.Blob) != 3 {
		t.Fatal("blob lost")
	}
}

func TestUploadResponseRoundTrip(t *testing.T) {
	got := roundTrip(t, &UploadResponse{ID: 123456789}).(*UploadResponse)
	if got.ID != 123456789 {
		t.Fatalf("ID = %d", got.ID)
	}
}

func TestBusyResponseRoundTrip(t *testing.T) {
	got := roundTrip(t, &BusyResponse{RetryAfterMs: 2500}).(*BusyResponse)
	if got.RetryAfterMs != 2500 {
		t.Fatalf("RetryAfterMs = %d", got.RetryAfterMs)
	}
	// Truncated payloads must be rejected, not misread.
	if _, err := DecodePayload(MsgBusy, []byte{1, 2}); err == nil {
		t.Fatal("truncated busy payload accepted")
	}
}

func TestStatsRoundTrip(t *testing.T) {
	if _, ok := roundTrip(t, &StatsRequest{}).(*StatsRequest); !ok {
		t.Fatal("stats request corrupted")
	}
	got := roundTrip(t, &StatsResponse{Images: 5, BytesReceived: 99}).(*StatsResponse)
	if got.Images != 5 || got.BytesReceived != 99 {
		t.Fatalf("stats corrupted: %+v", got)
	}
}

func TestErrorRoundTrip(t *testing.T) {
	got := roundTrip(t, &ErrorResponse{Message: "boom"}).(*ErrorResponse)
	if got.Message != "boom" {
		t.Fatalf("message = %q", got.Message)
	}
}

func TestWriteFrameRejectsUnknownType(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, "not a message"); err == nil {
		t.Fatal("unknown type should error")
	}
}

func TestReadFrameRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, byte(MsgQueryRequest)})
	if _, err := ReadFrame(&buf); err != ErrFrameTooLarge {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{10, 0, 0, 0, byte(MsgQueryRequest), 1, 2})
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("truncated payload should error")
	}
}

func TestReadFrameUnknownType(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0, 0xEE})
	_, err := ReadFrame(&buf)
	if err == nil || !strings.Contains(err.Error(), "unknown message type") {
		t.Fatalf("err = %v", err)
	}
}

func TestDecodeCorruptSet(t *testing.T) {
	// Announce 10 descriptors but provide none.
	var buf bytes.Buffer
	payload := []byte{1, 0, 0, 0 /* one set */, 10, 0, 0, 0 /* 10 descriptors */}
	header := []byte{byte(len(payload)), 0, 0, 0, byte(MsgQueryRequest)}
	buf.Write(header)
	buf.Write(payload)
	if _, err := ReadFrame(&buf); err == nil {
		t.Fatal("corrupt set should error")
	}
}

// TestOversizedCountSmallFrame is the regression test for the unbounded
// preallocation: a 4-byte query payload announcing 2³²−1 sets must be
// rejected without the decoder preallocating for the announced count.
func TestOversizedCountSmallFrame(t *testing.T) {
	frame := []byte{4, 0, 0, 0, byte(MsgQueryRequest), 0xff, 0xff, 0xff, 0xff}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := ReadFrame(bytes.NewReader(frame)); err == nil {
			t.Fatal("oversized set count accepted")
		}
	})
	// A handful of small allocations (header, payload, error) are fine; a
	// count-sized preallocation would be ~32 GB and billions of allocs.
	if allocs > 20 {
		t.Fatalf("decoder made %v allocations for a 4-byte payload", allocs)
	}
}

// TestUploadNonceRoundTrip pins the nonce field's place on the wire.
func TestUploadNonceRoundTrip(t *testing.T) {
	req := &UploadRequest{Nonce: 0xdeadbeefcafe, GroupID: 9, Blob: []byte{1}}
	got := roundTrip(t, req).(*UploadRequest)
	if got.Nonce != req.Nonce || got.GroupID != 9 {
		t.Fatalf("nonce/group corrupted: %+v", got)
	}
}

func TestMultipleFramesSequential(t *testing.T) {
	var buf bytes.Buffer
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5; i++ {
		if err := WriteFrame(&buf, &QueryRequest{Sets: []*features.BinarySet{randomSet(rng, i)}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		msg, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got := msg.(*QueryRequest).Sets[0].Len(); got != i {
			t.Fatalf("frame %d has %d descriptors", i, got)
		}
	}
}

// TestReadFrameNeverPanicsOnRandomBytes feeds random garbage to the
// decoder: errors are fine, panics are not.
func TestReadFrameNeverPanicsOnRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(200)
		data := make([]byte, n)
		rng.Read(data)
		// Bound the announced length so ReadFrame does not legitimately
		// wait for gigabytes: cap the first 4 bytes.
		if n >= 4 {
			data[2], data[3] = 0, 0
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %x: %v", data, r)
				}
			}()
			ReadFrame(bytes.NewReader(data))
		}()
	}
}

// TestDecodeTruncatedAtEveryByte checks a valid frame truncated at every
// possible offset errors cleanly.
func TestDecodeTruncatedAtEveryByte(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	var buf bytes.Buffer
	req := &UploadRequest{
		Set:     randomSet(rng, 3),
		GroupID: 7,
		Blob:    []byte("payload"),
	}
	if err := WriteFrame(&buf, req); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		if _, err := ReadFrame(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(full))
		}
	}
	if _, err := ReadFrame(bytes.NewReader(full)); err != nil {
		t.Fatalf("full frame rejected: %v", err)
	}
}
