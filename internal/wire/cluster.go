package wire

// Cluster protocol: a rendezvous-hashed cluster of beesd nodes splits
// the descriptor index into logical shards, each replicated on R nodes
// (see internal/cluster). Three request frames carry all cluster
// traffic —
//
//	ShardRoute   stage blocks + commit a shard's slice of an upload
//	             batch under router-assigned image IDs → ShardRouteResponse
//	ShardQuery   run the CBRD candidate query against a set of shards
//	             on one node → ShardQueryResponse (candidates + stats)
//	ShardSync    pull one shard's full replica state (snapshot stream +
//	             nonce-dedup window) → ShardSyncResponse
//
// ShardRoute folds the three-phase delta upload into one frame type:
// Query asks which of the listed block hashes the shard already holds
// (answered in Have), Blocks stages missing blocks, and Items commits
// manifests under the explicit IDs — non-contiguous within a shard,
// because the router assigns globally dense IDs and splits a batch
// across shards. A frame is atomic on the wire, and the commit joins
// the shard server's nonce-dedup window, so a replayed frame (write-all
// fan-out retrying a replica) re-acks the original IDs instead of
// applying twice.
//
// ShardQuery returns, per queried set, the top-Limit LSH candidates
// with their vote counts and exact similarities (including sim 0).
// Votes depend only on the query, the entry, and the seeded bit
// selectors — never on what else a shard holds — so the router's global
// re-rank of the per-node candidate lists reproduces the single-node
// candidate order bit-for-bit regardless of which replica answered or
// how shards were grouped per node. The response also carries per-shard
// stats so the router can aggregate Stats and bootstrap its ID sequence
// without an extra frame type.
//
// ShardSync streams the shard server's deterministic snapshot bytes
// (internal/server persist format, hash-sorted blocks) plus the shard's
// nonce-dedup window, so a replacement replica rebuilds byte-identical
// state — refcounts included — and still dedups late replays of nonces
// the failed node had already applied.

import (
	"encoding/binary"
	"errors"
	"math"

	"bees/internal/blockstore"
	"bees/internal/features"
)

// ShardRouteForwarded marks a frame already forwarded once by a
// non-owner node; a receiver that still does not own the shard answers
// with an error instead of forwarding again (no proxy loops).
const ShardRouteForwarded uint32 = 1 << 0

// ShardRoute is one shard's slice of an upload batch, plus the block
// staging that precedes it. Any of Query, Blocks, and Items may be
// empty; a Query-only frame is the read phase of the delta flow. IDs
// are the router-assigned global image IDs for Items, in item order
// (len(IDs) == len(Items) always).
type ShardRoute struct {
	Nonce  uint64
	Shard  uint32
	Flags  uint32
	IDs    []int64
	Query  []blockstore.Hash
	Blocks []Block
	Items  []ManifestItem
}

// MaxGain returns the highest item gain in the frame — the frame-level
// utility a gain-aware admission policy ranks by (0 when every item is
// unranked), mirroring UploadBatchRequest.MaxGain.
func (m *ShardRoute) MaxGain() float64 {
	best := 0.0
	for i := range m.Items {
		if g := m.Items[i].Gain; g > best {
			best = g
		}
	}
	return best
}

// ShardRouteResponse acknowledges a ShardRoute: Have answers Query hash
// for hash, IDs acknowledges the committed Items (the frame's own IDs,
// or the originally recorded ones on a nonce replay).
type ShardRouteResponse struct {
	Have []bool
	IDs  []int64
}

// ShardQuery runs the CBRD candidate query for each set against the
// union of the named shards on the receiving node. Sets may be empty —
// a stats-only probe still returns per-shard counters.
type ShardQuery struct {
	Shards []uint32
	Limit  uint32
	Sets   []*features.BinarySet
}

// ShardCandidate is one LSH candidate in a ShardQueryResponse: the
// image's global ID, its LSH vote count, and its exact Equation-2
// similarity (kept even when 0 so the router's global re-rank sees the
// same candidate list a single node would).
type ShardCandidate struct {
	ID    int64
	Votes uint32
	Sim   float64
}

// ShardStat carries one shard's upload counters and ID horizon.
type ShardStat struct {
	Shard  uint32
	Images int64
	Bytes  int64
	NextID int64
}

// ShardQueryResponse answers a ShardQuery: per-shard stats for every
// queried shard (in request order), and per set the top-Limit
// candidates across those shards merged by (votes desc, ID asc).
type ShardQueryResponse struct {
	Stats  []ShardStat
	PerSet [][]ShardCandidate
}

// ShardSync asks for a shard's full replica state.
type ShardSync struct {
	Shard uint32
}

// NonceEntry is one nonce-dedup window entry riding a ShardSyncResponse,
// in window (FIFO) order.
type NonceEntry struct {
	Nonce uint64
	IDs   []int64
}

// ShardSyncResponse carries a shard's snapshot stream (the server's
// deterministic persist format: index entries, upload history, and the
// refcounted block store) plus its nonce-dedup window.
type ShardSyncResponse struct {
	Snapshot []byte
	Nonces   []NonceEntry
}

func encodeShardRoute(m *ShardRoute) []byte {
	buf := encodeU64(m.Nonce)
	buf = binary.LittleEndian.AppendUint32(buf, m.Shard)
	buf = binary.LittleEndian.AppendUint32(buf, m.Flags)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.IDs)))
	for _, id := range m.IDs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(id))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Query)))
	for i := range m.Query {
		buf = append(buf, m.Query[i][:]...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Blocks)))
	for i := range m.Blocks {
		b := &m.Blocks[i]
		buf = append(buf, b.Hash[:]...)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(b.Data)))
		buf = append(buf, b.Data...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Items)))
	for i := range m.Items {
		buf = appendManifestItem(buf, &m.Items[i])
	}
	return buf
}

func decodeShardRoute(payload []byte) (*ShardRoute, error) {
	if len(payload) < 20 {
		return nil, errors.New("wire: truncated shard route")
	}
	m := &ShardRoute{
		Nonce: binary.LittleEndian.Uint64(payload),
		Shard: binary.LittleEndian.Uint32(payload[8:]),
		Flags: binary.LittleEndian.Uint32(payload[12:]),
	}
	nIDs := int(binary.LittleEndian.Uint32(payload[16:]))
	payload = payload[20:]
	if len(payload) < nIDs*8 {
		return nil, errors.New("wire: truncated shard route ids")
	}
	if nIDs > 0 {
		m.IDs = make([]int64, nIDs)
		for i := range m.IDs {
			m.IDs[i] = int64(binary.LittleEndian.Uint64(payload[i*8:]))
		}
	}
	payload = payload[nIDs*8:]
	if len(payload) < 4 {
		return nil, errors.New("wire: truncated shard route query")
	}
	nQuery := int(binary.LittleEndian.Uint32(payload))
	payload = payload[4:]
	if len(payload) < nQuery*hashLen {
		return nil, errors.New("wire: truncated shard route query hashes")
	}
	if nQuery > 0 {
		m.Query = make([]blockstore.Hash, nQuery)
		for i := range m.Query {
			copy(m.Query[i][:], payload[i*hashLen:])
		}
	}
	payload = payload[nQuery*hashLen:]
	if len(payload) < 4 {
		return nil, errors.New("wire: truncated shard route blocks")
	}
	nBlocks := int(binary.LittleEndian.Uint32(payload))
	payload = payload[4:]
	// The count is attacker-controlled; cap the preallocation by what the
	// remaining payload could actually hold.
	prealloc := nBlocks
	if max := len(payload) / minBlockPutBytes; prealloc > max {
		prealloc = max
	}
	if prealloc > 0 {
		m.Blocks = make([]Block, 0, prealloc)
	}
	for i := 0; i < nBlocks; i++ {
		if len(payload) < minBlockPutBytes {
			return nil, errors.New("wire: truncated shard route block")
		}
		var b Block
		copy(b.Hash[:], payload)
		dataLen := int(binary.LittleEndian.Uint32(payload[hashLen:]))
		payload = payload[minBlockPutBytes:]
		if len(payload) < dataLen {
			return nil, errors.New("wire: truncated shard route block data")
		}
		b.Data = payload[:dataLen:dataLen]
		payload = payload[dataLen:]
		m.Blocks = append(m.Blocks, b)
	}
	if len(payload) < 4 {
		return nil, errors.New("wire: truncated shard route items")
	}
	nItems := int(binary.LittleEndian.Uint32(payload))
	payload = payload[4:]
	prealloc = nItems
	if max := len(payload) / minManifestItemBytes; prealloc > max {
		prealloc = max
	}
	if prealloc > 0 {
		m.Items = make([]ManifestItem, 0, prealloc)
	}
	for i := 0; i < nItems; i++ {
		it, rest, err := decodeManifestItem(payload)
		if err != nil {
			return nil, err
		}
		m.Items = append(m.Items, it)
		payload = rest
	}
	if len(payload) != 0 {
		return nil, errors.New("wire: trailing bytes after shard route")
	}
	// Every committed item needs its router-assigned ID; a frame where the
	// two lists disagree cannot be applied and is rejected at the decoder
	// so the handler never sees it.
	if len(m.IDs) != len(m.Items) {
		return nil, errors.New("wire: shard route id/item count mismatch")
	}
	return m, nil
}

func encodeShardRouteResponse(m *ShardRouteResponse) []byte {
	buf := binary.LittleEndian.AppendUint32(nil, uint32(len(m.Have)))
	bitmap := make([]byte, (len(m.Have)+7)/8)
	for i, ok := range m.Have {
		if ok {
			bitmap[i/8] |= 1 << (i % 8)
		}
	}
	buf = append(buf, bitmap...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.IDs)))
	for _, id := range m.IDs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(id))
	}
	return buf
}

func decodeShardRouteResponse(payload []byte) (*ShardRouteResponse, error) {
	if len(payload) < 4 {
		return nil, errors.New("wire: truncated shard route response")
	}
	n := int(binary.LittleEndian.Uint32(payload))
	payload = payload[4:]
	bitmapLen := (n + 7) / 8
	if len(payload) < bitmapLen {
		return nil, errors.New("wire: truncated shard route bitmap")
	}
	bitmap := payload[:bitmapLen]
	// Trailing bits past n must be zero: one state, one encoding.
	if n%8 != 0 && bitmapLen > 0 && bitmap[bitmapLen-1]>>(n%8) != 0 {
		return nil, errors.New("wire: nonzero trailing bits in shard route bitmap")
	}
	m := &ShardRouteResponse{}
	if n > 0 {
		m.Have = make([]bool, n)
		for i := range m.Have {
			m.Have[i] = bitmap[i/8]&(1<<(i%8)) != 0
		}
	}
	payload = payload[bitmapLen:]
	if len(payload) < 4 {
		return nil, errors.New("wire: truncated shard route response ids")
	}
	nIDs := int(binary.LittleEndian.Uint32(payload))
	payload = payload[4:]
	if len(payload) != nIDs*8 {
		return nil, errors.New("wire: bad shard route response length")
	}
	if nIDs > 0 {
		m.IDs = make([]int64, nIDs)
		for i := range m.IDs {
			m.IDs[i] = int64(binary.LittleEndian.Uint64(payload[i*8:]))
		}
	}
	return m, nil
}

func encodeShardQuery(m *ShardQuery) []byte {
	buf := binary.LittleEndian.AppendUint32(nil, uint32(len(m.Shards)))
	for _, s := range m.Shards {
		buf = binary.LittleEndian.AppendUint32(buf, s)
	}
	buf = binary.LittleEndian.AppendUint32(buf, m.Limit)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Sets)))
	for _, s := range m.Sets {
		set := s
		if set == nil {
			set = &features.BinarySet{}
		}
		buf = encodeSet(buf, set)
	}
	return buf
}

func decodeShardQuery(payload []byte) (*ShardQuery, error) {
	if len(payload) < 4 {
		return nil, errors.New("wire: truncated shard query")
	}
	nShards := int(binary.LittleEndian.Uint32(payload))
	payload = payload[4:]
	if len(payload) < nShards*4 {
		return nil, errors.New("wire: truncated shard query shards")
	}
	m := &ShardQuery{}
	if nShards > 0 {
		m.Shards = make([]uint32, nShards)
		for i := range m.Shards {
			m.Shards[i] = binary.LittleEndian.Uint32(payload[i*4:])
		}
	}
	payload = payload[nShards*4:]
	if len(payload) < 8 {
		return nil, errors.New("wire: truncated shard query header")
	}
	m.Limit = binary.LittleEndian.Uint32(payload)
	nSets := int(binary.LittleEndian.Uint32(payload[4:]))
	payload = payload[8:]
	prealloc := nSets
	if max := len(payload) / 4; prealloc > max {
		prealloc = max
	}
	if prealloc > 0 {
		m.Sets = make([]*features.BinarySet, 0, prealloc)
	}
	for i := 0; i < nSets; i++ {
		set, rest, err := decodeSet(payload)
		if err != nil {
			return nil, err
		}
		m.Sets = append(m.Sets, set)
		payload = rest
	}
	if len(payload) != 0 {
		return nil, errors.New("wire: trailing bytes after shard query")
	}
	return m, nil
}

func encodeShardQueryResponse(m *ShardQueryResponse) []byte {
	buf := binary.LittleEndian.AppendUint32(nil, uint32(len(m.Stats)))
	for i := range m.Stats {
		st := &m.Stats[i]
		buf = binary.LittleEndian.AppendUint32(buf, st.Shard)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(st.Images))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(st.Bytes))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(st.NextID))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.PerSet)))
	for _, cands := range m.PerSet {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(cands)))
		for i := range cands {
			c := &cands[i]
			buf = binary.LittleEndian.AppendUint64(buf, uint64(c.ID))
			buf = binary.LittleEndian.AppendUint32(buf, c.Votes)
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.Sim))
		}
	}
	return buf
}

// shardStatBytes and shardCandidateBytes are the fixed encodings used to
// bound decode-time preallocation.
const (
	shardStatBytes      = 4 + 8 + 8 + 8
	shardCandidateBytes = 8 + 4 + 8
)

func decodeShardQueryResponse(payload []byte) (*ShardQueryResponse, error) {
	if len(payload) < 4 {
		return nil, errors.New("wire: truncated shard query response")
	}
	nStats := int(binary.LittleEndian.Uint32(payload))
	payload = payload[4:]
	if len(payload) < nStats*shardStatBytes {
		return nil, errors.New("wire: truncated shard stats")
	}
	m := &ShardQueryResponse{}
	if nStats > 0 {
		m.Stats = make([]ShardStat, nStats)
		for i := range m.Stats {
			p := payload[i*shardStatBytes:]
			m.Stats[i] = ShardStat{
				Shard:  binary.LittleEndian.Uint32(p),
				Images: int64(binary.LittleEndian.Uint64(p[4:])),
				Bytes:  int64(binary.LittleEndian.Uint64(p[12:])),
				NextID: int64(binary.LittleEndian.Uint64(p[20:])),
			}
		}
	}
	payload = payload[nStats*shardStatBytes:]
	if len(payload) < 4 {
		return nil, errors.New("wire: truncated shard query sets")
	}
	nSets := int(binary.LittleEndian.Uint32(payload))
	payload = payload[4:]
	prealloc := nSets
	if max := len(payload) / 4; prealloc > max {
		prealloc = max
	}
	if prealloc > 0 {
		m.PerSet = make([][]ShardCandidate, 0, prealloc)
	}
	for i := 0; i < nSets; i++ {
		if len(payload) < 4 {
			return nil, errors.New("wire: truncated shard candidate count")
		}
		nCands := int(binary.LittleEndian.Uint32(payload))
		payload = payload[4:]
		if len(payload) < nCands*shardCandidateBytes {
			return nil, errors.New("wire: truncated shard candidates")
		}
		var cands []ShardCandidate
		if nCands > 0 {
			cands = make([]ShardCandidate, nCands)
			for j := range cands {
				p := payload[j*shardCandidateBytes:]
				cands[j] = ShardCandidate{
					ID:    int64(binary.LittleEndian.Uint64(p)),
					Votes: binary.LittleEndian.Uint32(p[8:]),
					Sim:   math.Float64frombits(binary.LittleEndian.Uint64(p[12:])),
				}
			}
		}
		payload = payload[nCands*shardCandidateBytes:]
		m.PerSet = append(m.PerSet, cands)
	}
	if len(payload) != 0 {
		return nil, errors.New("wire: trailing bytes after shard query response")
	}
	return m, nil
}

func encodeShardSync(m *ShardSync) []byte {
	return binary.LittleEndian.AppendUint32(nil, m.Shard)
}

func decodeShardSync(payload []byte) (*ShardSync, error) {
	if len(payload) != 4 {
		return nil, errors.New("wire: bad shard sync")
	}
	return &ShardSync{Shard: binary.LittleEndian.Uint32(payload)}, nil
}

func encodeShardSyncResponse(m *ShardSyncResponse) []byte {
	buf := binary.LittleEndian.AppendUint32(nil, uint32(len(m.Snapshot)))
	buf = append(buf, m.Snapshot...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Nonces)))
	for i := range m.Nonces {
		e := &m.Nonces[i]
		buf = binary.LittleEndian.AppendUint64(buf, e.Nonce)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.IDs)))
		for _, id := range e.IDs {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(id))
		}
	}
	return buf
}

// minNonceEntryBytes is the smallest encodable window entry: nonce plus
// an empty ID count.
const minNonceEntryBytes = 8 + 4

func decodeShardSyncResponse(payload []byte) (*ShardSyncResponse, error) {
	if len(payload) < 4 {
		return nil, errors.New("wire: truncated shard sync response")
	}
	snapLen := int(binary.LittleEndian.Uint32(payload))
	payload = payload[4:]
	if snapLen < 0 || len(payload) < snapLen {
		return nil, errors.New("wire: truncated shard sync snapshot")
	}
	m := &ShardSyncResponse{}
	if snapLen > 0 {
		m.Snapshot = payload[:snapLen:snapLen]
	}
	payload = payload[snapLen:]
	if len(payload) < 4 {
		return nil, errors.New("wire: truncated shard sync nonces")
	}
	nNonces := int(binary.LittleEndian.Uint32(payload))
	payload = payload[4:]
	prealloc := nNonces
	if max := len(payload) / minNonceEntryBytes; prealloc > max {
		prealloc = max
	}
	if prealloc > 0 {
		m.Nonces = make([]NonceEntry, 0, prealloc)
	}
	for i := 0; i < nNonces; i++ {
		if len(payload) < minNonceEntryBytes {
			return nil, errors.New("wire: truncated nonce entry")
		}
		e := NonceEntry{Nonce: binary.LittleEndian.Uint64(payload)}
		nIDs := int(binary.LittleEndian.Uint32(payload[8:]))
		payload = payload[minNonceEntryBytes:]
		if len(payload) < nIDs*8 {
			return nil, errors.New("wire: truncated nonce entry ids")
		}
		if nIDs > 0 {
			e.IDs = make([]int64, nIDs)
			for j := range e.IDs {
				e.IDs[j] = int64(binary.LittleEndian.Uint64(payload[j*8:]))
			}
		}
		payload = payload[nIDs*8:]
		m.Nonces = append(m.Nonces, e)
	}
	if len(payload) != 0 {
		return nil, errors.New("wire: trailing bytes after shard sync response")
	}
	return m, nil
}

// appendManifestItem encodes one manifest item (the ManifestCommit item
// layout, shared by ShardRoute).
func appendManifestItem(buf []byte, it *ManifestItem) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(it.GroupID))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(it.Lat))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(it.Lon))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(it.Gain))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(it.TotalBytes))
	buf = binary.LittleEndian.AppendUint32(buf, it.BlockSize)
	set := it.Set
	if set == nil {
		set = &features.BinarySet{}
	}
	buf = encodeSet(buf, set)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(it.Hashes)))
	for j := range it.Hashes {
		buf = append(buf, it.Hashes[j][:]...)
	}
	return buf
}

// decodeManifestItem decodes one manifest item, returning the rest of
// the payload.
func decodeManifestItem(payload []byte) (ManifestItem, []byte, error) {
	var it ManifestItem
	if len(payload) < 44 {
		return it, nil, errors.New("wire: truncated manifest item")
	}
	it = ManifestItem{
		GroupID:    int64(binary.LittleEndian.Uint64(payload)),
		Lat:        math.Float64frombits(binary.LittleEndian.Uint64(payload[8:])),
		Lon:        math.Float64frombits(binary.LittleEndian.Uint64(payload[16:])),
		Gain:       math.Float64frombits(binary.LittleEndian.Uint64(payload[24:])),
		TotalBytes: int64(binary.LittleEndian.Uint64(payload[32:])),
		BlockSize:  binary.LittleEndian.Uint32(payload[40:]),
	}
	set, rest, err := decodeSet(payload[44:])
	if err != nil {
		return it, nil, err
	}
	it.Set = set
	if len(rest) < 4 {
		return it, nil, errors.New("wire: truncated manifest hash count")
	}
	nh := int(binary.LittleEndian.Uint32(rest))
	rest = rest[4:]
	if len(rest) < nh*hashLen {
		return it, nil, errors.New("wire: truncated manifest hashes")
	}
	it.Hashes = make([]blockstore.Hash, nh)
	for j := 0; j < nh; j++ {
		copy(it.Hashes[j][:], rest[j*hashLen:])
	}
	return it, rest[nh*hashLen:], nil
}
