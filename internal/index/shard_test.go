package index

import (
	"reflect"
	"sync"
	"testing"

	"bees/internal/features"
)

// TestShardedMatchesSingleShard pins the sharding invariant: because an
// image lives in exactly one shard and per-shard votes merge before the
// global candidate ranking, results are identical for every shard count.
func TestShardedMatchesSingleShard(t *testing.T) {
	c := newCorpus(t, 12, 80)
	build := func(shards int) *Index {
		cfg := DefaultConfig()
		cfg.Shards = shards
		idx := New(cfg)
		for i, s := range c.sets {
			idx.Add(&Entry{ID: ImageID(i), Set: s, GroupID: int64(i)})
		}
		return idx
	}
	single, many := build(1), build(8)
	if single.Len() != many.Len() {
		t.Fatalf("Len: %d vs %d", single.Len(), many.Len())
	}
	for i := range c.sets {
		q := c.variantSet(i)
		a, b := single.QueryTopK(q, 5), many.QueryTopK(q, 5)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("query %d: sharded results diverge\nsingle: %+v\nsharded: %+v", i, a, b)
		}
		simA := single.QueryMaxBatch([]*features.BinarySet{q})
		simB := many.QueryMaxBatch([]*features.BinarySet{q})
		if !reflect.DeepEqual(simA, simB) {
			t.Fatalf("query %d: batch sims diverge: %v vs %v", i, simA, simB)
		}
	}
}

// TestShardsDefaultedOnZero checks Config.Shards is repaired, not
// rejected — pre-sharding callers construct Config literals without it.
func TestShardsDefaultedOnZero(t *testing.T) {
	idx := New(Config{Tables: 2, BitsPerKey: 8})
	if got := len(idx.shards); got != DefaultShards {
		t.Fatalf("zero Shards gave %d stripes, want %d", got, DefaultShards)
	}
	idx = New(Config{Tables: 2, BitsPerKey: 8, Shards: 3})
	if got := len(idx.shards); got != 3 {
		t.Fatalf("Shards=3 gave %d stripes", got)
	}
}

// TestConcurrentQueryUpload hammers the sharded index with concurrent
// writers and readers. Run under -race (tier2) this proves the striped
// locking is sound; without it, it still checks nothing is lost.
func TestConcurrentQueryUpload(t *testing.T) {
	c := newCorpus(t, 8, 81)
	cfg := DefaultConfig()
	cfg.Shards = 4
	idx := New(cfg)
	const writers, perWriter = 4, 6
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				src := (w + j) % len(c.sets)
				idx.Add(&Entry{ID: ImageID(w*perWriter + j), Set: c.sets[src], GroupID: int64(src)})
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				idx.QueryMax(c.sets[(r+j)%len(c.sets)])
				idx.Len()
			}
		}(r)
	}
	wg.Wait()
	if idx.Len() != writers*perWriter {
		t.Fatalf("Len = %d after concurrent adds, want %d", idx.Len(), writers*perWriter)
	}
	// Every entry must be findable and correctly ranked once quiescent.
	for i := range c.sets {
		if _, sim := idx.QueryMax(c.variantSet(i)); sim <= 0 {
			t.Fatalf("entry %d unretrievable after concurrent build", i)
		}
	}
}
