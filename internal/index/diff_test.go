package index

// Differential tests: the index's prepared-kernel re-ranking must report
// exactly the similarities the brute-force reference matcher computes,
// and ExhaustiveMax must agree with a by-hand reference scan.

import (
	"testing"

	"bees/internal/features"
)

func TestQueryTopKSimilaritiesMatchReference(t *testing.T) {
	c := newCorpus(t, 10, 0xd1f)
	idx := buildIndex(c)
	for i := 0; i < 4; i++ {
		q := c.variantSet(i)
		for _, res := range idx.QueryTopK(q, 5) {
			e := idx.Get(res.ID)
			want := features.JaccardBinaryRef(q, e.Set, idx.cfg.HammingMax)
			if res.Similarity != want {
				t.Fatalf("query %d: result %d similarity %v, reference %v",
					i, res.ID, res.Similarity, want)
			}
		}
	}
}

func TestExhaustiveMaxMatchesReference(t *testing.T) {
	c := newCorpus(t, 8, 0xe4a)
	idx := buildIndex(c)
	for i := 0; i < 3; i++ {
		q := c.variantSet(i)
		gotE, gotSim := idx.ExhaustiveMax(q)
		// Reference scan, same ID order and same strict-improvement rule.
		var wantE *Entry
		wantSim := 0.0
		for _, id := range idx.sortedIDs() {
			e := idx.Get(id)
			if sim := features.JaccardBinaryRef(q, e.Set, idx.cfg.HammingMax); sim > wantSim {
				wantSim, wantE = sim, e
			}
		}
		if gotSim != wantSim || gotE != wantE {
			t.Fatalf("query %d: ExhaustiveMax = (%v, %v), reference (%v, %v)",
				i, gotE, gotSim, wantE, wantSim)
		}
	}
}
