package index

import (
	"math/rand"
	"sync"
	"testing"

	"bees/internal/features"
	"bees/internal/imagelib"
)

type testCorpus struct {
	pool   *imagelib.MotifPool
	scenes []*imagelib.Scene
	sets   []*features.BinarySet
	rng    *rand.Rand
}

func newCorpus(t testing.TB, n int, seed int64) *testCorpus {
	t.Helper()
	c := &testCorpus{
		pool: imagelib.NewMotifPool(500, 500, 40),
		rng:  rand.New(rand.NewSource(seed)),
	}
	cfg := features.DefaultConfig()
	for i := 0; i < n; i++ {
		s := imagelib.GenScene(c.pool, c.rng)
		r := s.Render(c.pool, imagelib.DefaultW, imagelib.DefaultH, imagelib.CanonicalVariant())
		c.scenes = append(c.scenes, s)
		c.sets = append(c.sets, features.ExtractORB(r, cfg))
	}
	return c
}

func (c *testCorpus) variantSet(i int) *features.BinarySet {
	r := c.scenes[i].Render(c.pool, imagelib.DefaultW, imagelib.DefaultH,
		imagelib.Variant{ShiftX: 3, ShiftY: -2, Brightness: 5, NoiseSigma: 2.5, Seed: c.rng.Int63()})
	return features.ExtractORB(r, features.DefaultConfig())
}

func buildIndex(c *testCorpus) *Index {
	idx := New(DefaultConfig())
	for i, s := range c.sets {
		idx.Add(&Entry{ID: ImageID(i), Set: s, GroupID: int64(i)})
	}
	return idx
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	for _, cfg := range []Config{
		{Tables: 0, BitsPerKey: 16},
		{Tables: 4, BitsPerKey: 0},
		{Tables: 4, BitsPerKey: 40},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestConfigDefaultsRepaired(t *testing.T) {
	idx := New(Config{Tables: 2, BitsPerKey: 8})
	if idx.cfg.CandidateLimit <= 0 || idx.cfg.HammingMax <= 0 {
		t.Fatal("zero config fields not repaired")
	}
}

func TestEmptyIndexQueries(t *testing.T) {
	idx := New(DefaultConfig())
	c := newCorpus(t, 1, 60)
	if e, sim := idx.QueryMax(c.sets[0]); e != nil || sim != 0 {
		t.Fatal("empty index QueryMax should return nil, 0")
	}
	if res := idx.QueryTopK(c.sets[0], 4); res != nil {
		t.Fatal("empty index QueryTopK should return nil")
	}
	if idx.Len() != 0 {
		t.Fatal("empty index Len != 0")
	}
}

func TestAddNilSafe(t *testing.T) {
	idx := New(DefaultConfig())
	idx.Add(nil)
	idx.Add(&Entry{ID: 1, Set: nil})
	if idx.Len() != 0 {
		t.Fatal("nil adds should be ignored")
	}
}

func TestQueryFindsExactDuplicate(t *testing.T) {
	c := newCorpus(t, 20, 61)
	idx := buildIndex(c)
	e, sim := idx.QueryMax(c.sets[7])
	if e == nil || e.ID != 7 {
		t.Fatalf("QueryMax on duplicate returned %+v", e)
	}
	if sim < 0.9 {
		t.Fatalf("duplicate similarity = %v, want ~1", sim)
	}
}

func TestQueryFindsSimilarVariant(t *testing.T) {
	c := newCorpus(t, 30, 62)
	idx := buildIndex(c)
	hits := 0
	for i := 0; i < 10; i++ {
		e, sim := idx.QueryMax(c.variantSet(i))
		if e != nil && e.ID == ImageID(i) && sim > 0.019 {
			hits++
		}
	}
	if hits < 8 {
		t.Fatalf("variant queries found their scene only %d/10 times", hits)
	}
}

func TestQueryTopKRanked(t *testing.T) {
	c := newCorpus(t, 25, 63)
	idx := buildIndex(c)
	res := idx.QueryTopK(c.variantSet(3), 5)
	if len(res) == 0 {
		t.Fatal("no results")
	}
	for i := 1; i < len(res); i++ {
		if res[i].Similarity > res[i-1].Similarity {
			t.Fatal("results not ranked by similarity")
		}
	}
	if res[0].ID != 3 {
		t.Fatalf("top result = %d, want 3", res[0].ID)
	}
}

func TestQueryTopKLimit(t *testing.T) {
	c := newCorpus(t, 10, 64)
	idx := buildIndex(c)
	if res := idx.QueryTopK(c.sets[0], 3); len(res) > 3 {
		t.Fatalf("QueryTopK(3) returned %d results", len(res))
	}
	if res := idx.QueryTopK(c.sets[0], 0); res != nil {
		t.Fatal("QueryTopK(0) should return nil")
	}
}

func TestLSHAgreesWithExhaustive(t *testing.T) {
	c := newCorpus(t, 40, 65)
	idx := buildIndex(c)
	agree := 0
	const trials = 12
	for i := 0; i < trials; i++ {
		q := c.variantSet(i)
		eL, simL := idx.QueryMax(q)
		eX, simX := idx.ExhaustiveMax(q)
		if eL != nil && eX != nil && eL.ID == eX.ID {
			agree++
			if simL != simX {
				t.Fatalf("same image, different similarity: %v vs %v", simL, simX)
			}
		}
	}
	if agree < trials-2 {
		t.Fatalf("LSH agreed with exhaustive on only %d/%d queries", agree, trials)
	}
}

func TestGet(t *testing.T) {
	c := newCorpus(t, 5, 66)
	idx := buildIndex(c)
	if e := idx.Get(2); e == nil || e.ID != 2 {
		t.Fatal("Get(2) failed")
	}
	if e := idx.Get(99); e != nil {
		t.Fatal("Get(99) should be nil")
	}
}

func TestEntryMetadataPreserved(t *testing.T) {
	c := newCorpus(t, 3, 67)
	idx := New(DefaultConfig())
	idx.Add(&Entry{ID: 1, Set: c.sets[0], GroupID: 42, Lat: 48.86, Lon: 2.33})
	e := idx.Get(1)
	if e.GroupID != 42 || e.Lat != 48.86 || e.Lon != 2.33 {
		t.Fatalf("metadata lost: %+v", e)
	}
	res := idx.QueryTopK(c.sets[0], 1)
	if len(res) != 1 || res[0].GroupID != 42 {
		t.Fatal("GroupID not propagated to results")
	}
}

func TestConcurrentAddQuery(t *testing.T) {
	c := newCorpus(t, 20, 68)
	idx := New(DefaultConfig())
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			idx.Add(&Entry{ID: ImageID(i), Set: c.sets[i], GroupID: int64(i)})
		}(i)
		go func(i int) {
			defer wg.Done()
			idx.QueryMax(c.sets[i])
		}(i)
	}
	wg.Wait()
	if idx.Len() != 20 {
		t.Fatalf("after concurrent adds Len = %d, want 20", idx.Len())
	}
}

func TestHashKeyUsesSelectedBits(t *testing.T) {
	var d features.Descriptor
	d[0] = 0b1010
	sel := []int{0, 1, 2, 3}
	if got := hashKey(d, sel); got != 0b1010 {
		t.Fatalf("hashKey = %b, want 1010", got)
	}
	sel = []int{1, 3}
	if got := hashKey(d, sel); got != 0b11 {
		t.Fatalf("hashKey = %b, want 11", got)
	}
}

func TestBitSelectionDeterministic(t *testing.T) {
	a := New(DefaultConfig())
	b := New(DefaultConfig())
	for t2 := range a.bitSel {
		for i := range a.bitSel[t2] {
			if a.bitSel[t2][i] != b.bitSel[t2][i] {
				t.Fatal("bit selection differs across identically-configured indexes")
			}
		}
	}
}

func TestQueryDropsZeroSimilarityCandidates(t *testing.T) {
	c := newCorpus(t, 10, 69)
	idx := buildIndex(c)
	// Every returned result must carry positive similarity (hash-bucket
	// collisions with no exact match are filtered).
	for q := 0; q < 5; q++ {
		for _, r := range idx.QueryTopK(c.variantSet(q), 10) {
			if r.Similarity <= 0 {
				t.Fatalf("zero-similarity result leaked: %+v", r)
			}
		}
	}
}

func TestForEachOrderedAndComplete(t *testing.T) {
	c := newCorpus(t, 6, 70)
	idx := buildIndex(c)
	var ids []ImageID
	idx.ForEach(func(e *Entry) { ids = append(ids, e.ID) })
	if len(ids) != 6 {
		t.Fatalf("ForEach visited %d entries", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			t.Fatal("ForEach not in ascending ID order")
		}
	}
}

func TestBucketKeysBounded(t *testing.T) {
	// Keys must fit in BitsPerKey bits.
	cfg := DefaultConfig()
	idx := New(cfg)
	c := newCorpus(t, 3, 71)
	for i, s := range c.sets {
		idx.Add(&Entry{ID: ImageID(i), Set: s})
	}
	limit := uint32(1) << uint(cfg.BitsPerKey)
	for _, sh := range idx.shards {
		for t2 := range sh.tables {
			for key := range sh.tables[t2] {
				if key >= limit {
					t.Fatalf("bucket key %d exceeds %d bits", key, cfg.BitsPerKey)
				}
			}
		}
	}
}
