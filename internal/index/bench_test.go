package index

import "testing"

func BenchmarkQueryMaxLSH(b *testing.B) {
	c := newCorpus(b, 60, 900)
	idx := buildIndex(c)
	q := c.variantSet(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.QueryMax(q)
	}
}

func BenchmarkQueryMaxExhaustive(b *testing.B) {
	c := newCorpus(b, 60, 901)
	idx := buildIndex(c)
	q := c.variantSet(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.ExhaustiveMax(q)
	}
}

func BenchmarkAdd(b *testing.B) {
	c := newCorpus(b, 8, 902)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := New(DefaultConfig())
		for j, s := range c.sets {
			idx.Add(&Entry{ID: ImageID(j), Set: s})
		}
	}
}
