package index

import (
	"fmt"
	"testing"

	"bees/internal/features"
)

func BenchmarkQueryMaxLSH(b *testing.B) {
	c := newCorpus(b, 60, 900)
	idx := buildIndex(c)
	q := c.variantSet(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.QueryMax(q)
	}
}

func BenchmarkQueryMaxExhaustive(b *testing.B) {
	c := newCorpus(b, 60, 901)
	idx := buildIndex(c)
	q := c.variantSet(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.ExhaustiveMax(q)
	}
}

// BenchmarkQueryMaxExhaustiveRef is the brute-force matcher baseline for
// the exhaustive scan (same corpus and query as the prepared benchmark
// above), kept so `make benchdiff` tracks the kernel speedup at the
// index layer.
func BenchmarkQueryMaxExhaustiveRef(b *testing.B) {
	c := newCorpus(b, 60, 901)
	idx := buildIndex(c)
	q := c.variantSet(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var best *Entry
		bestSim := 0.0
		for _, id := range idx.sortedIDs() {
			e := idx.Get(id)
			if sim := features.JaccardBinaryRef(q, e.Set, idx.cfg.HammingMax); sim > bestSim {
				bestSim, best = sim, e
			}
		}
		_ = best
	}
}

func BenchmarkAdd(b *testing.B) {
	c := newCorpus(b, 8, 902)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := New(DefaultConfig())
		for j, s := range c.sets {
			idx.Add(&Entry{ID: ImageID(j), Set: s})
		}
	}
}

// benchShardedIndex builds an index with the given stripe count holding
// 64 entries (the corpus sets reused under distinct IDs, as shard load).
func benchShardedIndex(c *testCorpus, shards int) *Index {
	cfg := DefaultConfig()
	cfg.Shards = shards
	idx := New(cfg)
	for i := 0; i < 64; i++ {
		idx.Add(&Entry{ID: ImageID(i), Set: c.sets[i%len(c.sets)], GroupID: int64(i)})
	}
	return idx
}

// BenchmarkQueryMaxSharded compares the per-query cost of the shard
// fan-out against a single stripe; results are identical by construction
// (TestShardedMatchesSingleShard), only the locking granularity differs.
func BenchmarkQueryMaxSharded(b *testing.B) {
	c := newCorpus(b, 8, 903)
	queries := make([]*features.BinarySet, len(c.sets))
	for i := range queries {
		queries[i] = c.variantSet(i)
	}
	for _, shards := range []int{1, DefaultShards} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			idx := benchShardedIndex(c, shards)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx.QueryMax(queries[i%len(queries)])
			}
		})
	}
}

// BenchmarkQueryMaxBatch measures the batched CBRD query: 16 sets per
// operation, fanned across host cores and index shards.
func BenchmarkQueryMaxBatch(b *testing.B) {
	c := newCorpus(b, 8, 904)
	batch := make([]*features.BinarySet, 16)
	for i := range batch {
		batch[i] = c.variantSet(i % len(c.sets))
	}
	idx := benchShardedIndex(c, DefaultShards)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.QueryMaxBatch(batch)
	}
}
