// Package index implements the cloud-side similarity index BEES queries
// for cross-batch redundancy detection (CBRD): a multi-table bit-sampling
// LSH over 256-bit ORB descriptors generates candidates, which are then
// re-ranked with the exact Jaccard similarity of Equation 2.
//
// The index is lock-striped: entries and their hash buckets are spread
// over Config.Shards independent shards, each behind its own RWMutex, so
// a write (Add) locks 1/S of the index instead of all of it and queries
// fan out over the shards concurrently. Results are byte-identical to a
// single-shard index: an image lives in exactly one shard, so per-shard
// LSH votes merge losslessly before the global candidate ranking.
package index

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"bees/internal/features"
	"bees/internal/par"
)

// ImageID identifies an image stored in the index.
type ImageID int64

// Entry is one indexed image: its descriptor set plus the metadata the
// evaluation uses (dataset group for precision, geotag for coverage).
type Entry struct {
	ID      ImageID
	Set     *features.BinarySet
	GroupID int64
	Lat     float64
	Lon     float64

	// prep is the matching-accelerated form of Set, built once on Add so
	// every query re-ranks against prepared tables instead of re-scanning
	// the raw descriptors.
	prep *features.PreparedBinarySet
}

// prepared returns the entry's accelerated set, building it on the spot
// for entries that never passed through Add (hand-built in tests).
func (e *Entry) prepared() *features.PreparedBinarySet {
	if e.prep != nil {
		return e.prep
	}
	return e.Set.Prepare()
}

// Result is one ranked query answer.
type Result struct {
	ID         ImageID
	GroupID    int64
	Similarity float64
}

// Config controls the LSH parameters.
type Config struct {
	// Tables is the number of independent hash tables.
	Tables int
	// BitsPerKey is the number of sampled descriptor bits per key (≤ 32).
	BitsPerKey int
	// HammingMax is the exact-match radius used for re-ranking.
	HammingMax int
	// CandidateLimit caps the number of images re-ranked exactly.
	CandidateLimit int
	// Seed drives the bit sampling.
	Seed int64
	// Shards is the number of lock stripes the index is split into.
	// Zero or negative selects DefaultShards. Shard assignment is a pure
	// function of the image ID, so results do not depend on the count.
	Shards int
}

// DefaultShards is the lock-stripe count used when Config.Shards is not
// set: enough stripes that concurrent uploads rarely contend, few enough
// that per-query fan-out stays cheap.
const DefaultShards = 8

// DefaultConfig returns LSH parameters tuned for 256-bit descriptors with
// a match radius around DefaultHammingMax: similar descriptors collide in
// at least one table with high probability, random ones almost never.
func DefaultConfig() Config {
	return Config{
		Tables:         4,
		BitsPerKey:     16,
		HammingMax:     features.DefaultHammingMax,
		CandidateLimit: 24,
		Seed:           0x1d5,
		Shards:         DefaultShards,
	}
}

// shard is one lock stripe: a slice of the entry map plus the matching
// slice of every hash table.
type shard struct {
	mu      sync.RWMutex
	entries map[ImageID]*Entry
	tables  []map[uint32][]ImageID
}

// Index is a thread-safe similarity index over descriptor sets.
type Index struct {
	cfg    Config
	shards []*shard
	bitSel [][]int // read-only after New
}

// New creates an empty index with the given configuration.
func New(cfg Config) *Index {
	if cfg.Tables <= 0 || cfg.BitsPerKey <= 0 || cfg.BitsPerKey > 32 {
		panic(fmt.Sprintf("index: invalid config %+v", cfg))
	}
	if cfg.CandidateLimit <= 0 {
		cfg.CandidateLimit = 24
	}
	if cfg.HammingMax <= 0 {
		cfg.HammingMax = features.DefaultHammingMax
	}
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	idx := &Index{
		cfg:    cfg,
		shards: make([]*shard, cfg.Shards),
		bitSel: make([][]int, cfg.Tables),
	}
	for s := range idx.shards {
		sh := &shard{
			entries: make(map[ImageID]*Entry),
			tables:  make([]map[uint32][]ImageID, cfg.Tables),
		}
		for t := range sh.tables {
			sh.tables[t] = make(map[uint32][]ImageID)
		}
		idx.shards[s] = sh
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for t := 0; t < cfg.Tables; t++ {
		sel := rng.Perm(256)[:cfg.BitsPerKey]
		sort.Ints(sel)
		idx.bitSel[t] = sel
	}
	return idx
}

// shardFor maps an image ID to its owning stripe.
func (x *Index) shardFor(id ImageID) *shard {
	n := uint64(len(x.shards))
	return x.shards[uint64(id)%n]
}

// Len returns the number of indexed images.
func (x *Index) Len() int {
	n := 0
	for _, sh := range x.shards {
		sh.mu.RLock()
		n += len(sh.entries)
		sh.mu.RUnlock()
	}
	return n
}

// Add inserts an image, locking only the entry's own shard — concurrent
// uploads to different shards do not serialize. Re-adding an existing ID
// replaces its metadata but keeps old hash buckets pointing at it, so
// callers should use fresh IDs (the server layer guarantees this).
func (x *Index) Add(e *Entry) {
	if e == nil || e.Set == nil {
		return
	}
	e.prep = e.Set.Prepare()
	sh := x.shardFor(e.ID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.entries[e.ID] = e
	for t := range sh.tables {
		table := sh.tables[t]
		sel := x.bitSel[t]
		for _, d := range e.Set.Descriptors {
			key := hashKey(d, sel)
			bucket := table[key]
			// The same image often hashes many descriptors into one
			// bucket; store it once per bucket.
			if n := len(bucket); n > 0 && bucket[n-1] == e.ID {
				continue
			}
			table[key] = append(bucket, e.ID)
		}
	}
}

// Get returns the entry for id, or nil.
func (x *Index) Get(id ImageID) *Entry {
	sh := x.shardFor(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.entries[id]
}

// QueryMax returns the indexed image with the highest Equation-2
// similarity to the query set, or (nil, 0) when the index is empty or no
// candidate shares a hash bucket.
func (x *Index) QueryMax(set *features.BinarySet) (*Entry, float64) {
	res := x.QueryTopK(set, 1)
	if len(res) == 0 {
		return nil, 0
	}
	return x.Get(res[0].ID), res[0].Similarity
}

// votes collects this shard's LSH bucket hits for the query set. Holding
// only the shard's read lock, it is safe to run one goroutine per shard.
func (sh *shard) votes(set *features.BinarySet, bitSel [][]int) map[ImageID]int {
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	v := make(map[ImageID]int)
	for t := range sh.tables {
		table := sh.tables[t]
		sel := bitSel[t]
		for _, d := range set.Descriptors {
			for _, id := range table[hashKey(d, sel)] {
				v[id]++
			}
		}
	}
	return v
}

// Candidate is one LSH candidate surviving the vote ranking: its merged
// vote count across the hash tables plus the exact Equation-2 similarity
// (which may be 0 — a hash collision with no surviving exact match).
// Candidates are what a cluster router merges across index partitions:
// votes depend only on the query, the entry, and the seeded bit
// selectors, so per-partition top-limit candidate lists re-rank into the
// exact global candidate order (see internal/cluster).
type Candidate struct {
	ID         ImageID
	GroupID    int64
	Votes      int
	Similarity float64
}

// QueryCandidates returns the top-limit LSH candidates for the query
// set, ranked by (votes desc, ID asc), each carrying its exact
// similarity. Unlike QueryTopK it keeps zero-similarity candidates: a
// partial (per-partition) candidate list must preserve the vote ranking
// exactly, and dropping sim-0 entries before the global merge would
// shift which candidates survive the global limit.
func (x *Index) QueryCandidates(set *features.BinarySet, limit int) []Candidate {
	if set.Len() == 0 || limit <= 0 {
		return nil
	}
	perShard := make([]map[ImageID]int, len(x.shards))
	if len(x.shards) == 1 {
		perShard[0] = x.shards[0].votes(set, x.bitSel)
	} else {
		par.Do(len(x.shards), func(s int) {
			perShard[s] = x.shards[s].votes(set, x.bitSel)
		})
	}
	votes := perShard[0]
	for _, v := range perShard[1:] {
		for id, n := range v {
			votes[id] += n
		}
	}
	if len(votes) == 0 {
		return nil
	}
	type cand struct {
		id    ImageID
		votes int
	}
	cands := make([]cand, 0, len(votes))
	for id, v := range votes {
		cands = append(cands, cand{id, v})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].votes != cands[j].votes {
			return cands[i].votes > cands[j].votes
		}
		return cands[i].id < cands[j].id
	})
	if len(cands) > limit {
		cands = cands[:limit]
	}
	out := make([]Candidate, 0, len(cands))
	prepQ := set.Prepare()
	for _, c := range cands {
		e := x.Get(c.id)
		if e == nil {
			continue
		}
		out = append(out, Candidate{
			ID:         e.ID,
			GroupID:    e.GroupID,
			Votes:      c.votes,
			Similarity: features.JaccardPrepared(prepQ, e.prepared(), x.cfg.HammingMax),
		})
	}
	return out
}

// QueryTopK returns the k most similar indexed images, ranked by exact
// Jaccard similarity over the LSH candidate set. Candidate generation
// fans out over the shards concurrently; because each image lives in
// exactly one shard, merging the per-shard votes reproduces the global
// vote counts, so the ranking is identical to a single-shard index.
func (x *Index) QueryTopK(set *features.BinarySet, k int) []Result {
	if set.Len() == 0 || k <= 0 {
		return nil
	}
	limit := x.cfg.CandidateLimit
	if k > limit {
		limit = k
	}
	cands := x.QueryCandidates(set, limit)
	if len(cands) == 0 {
		return nil
	}
	results := make([]Result, 0, len(cands))
	for _, c := range cands {
		if c.Similarity <= 0 {
			// A hash collision with no surviving exact match is not a
			// retrieval result.
			continue
		}
		results = append(results, Result{ID: c.ID, GroupID: c.GroupID, Similarity: c.Similarity})
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Similarity != results[j].Similarity {
			return results[i].Similarity > results[j].Similarity
		}
		return results[i].ID < results[j].ID
	})
	if len(results) > k {
		results = results[:k]
	}
	return results
}

// QueryMaxBatch answers the CBRD similarity query for a whole batch of
// sets at once, running the per-set queries across all host cores. The
// result is one maximum similarity per set, in order.
func (x *Index) QueryMaxBatch(sets []*features.BinarySet) []float64 {
	sims := make([]float64, len(sets))
	par.Do(len(sets), func(i int) {
		if sets[i] == nil {
			return
		}
		_, sims[i] = x.QueryMax(sets[i])
	})
	return sims
}

// sortedIDs returns every indexed ID in ascending order.
func (x *Index) sortedIDs() []ImageID {
	ids := make([]ImageID, 0, x.Len())
	for _, sh := range x.shards {
		sh.mu.RLock()
		for id := range sh.entries {
			ids = append(ids, id)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// ExhaustiveMax scans every indexed image with the exact similarity and
// returns the best match. It is the brute-force baseline the ablation
// bench compares the LSH path against.
func (x *Index) ExhaustiveMax(set *features.BinarySet) (*Entry, float64) {
	var best *Entry
	bestSim := 0.0
	prepQ := set.Prepare()
	for _, id := range x.sortedIDs() {
		e := x.Get(id)
		if e == nil {
			continue
		}
		if sim := features.JaccardPrepared(prepQ, e.prepared(), x.cfg.HammingMax); sim > bestSim {
			bestSim, best = sim, e
		}
	}
	return best, bestSim
}

// hashKey samples the selected bits of d into a bucket key.
func hashKey(d features.Descriptor, sel []int) uint32 {
	var key uint32
	for i, b := range sel {
		key |= uint32(d.Bit(b)) << uint(i)
	}
	return key
}

// ForEach calls fn for every entry in ascending ID order. The entries
// are shared; callers must not mutate them.
func (x *Index) ForEach(fn func(*Entry)) {
	for _, id := range x.sortedIDs() {
		if e := x.Get(id); e != nil {
			fn(e)
		}
	}
}
