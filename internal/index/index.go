// Package index implements the cloud-side similarity index BEES queries
// for cross-batch redundancy detection (CBRD): a multi-table bit-sampling
// LSH over 256-bit ORB descriptors generates candidates, which are then
// re-ranked with the exact Jaccard similarity of Equation 2.
package index

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"bees/internal/features"
)

// ImageID identifies an image stored in the index.
type ImageID int64

// Entry is one indexed image: its descriptor set plus the metadata the
// evaluation uses (dataset group for precision, geotag for coverage).
type Entry struct {
	ID      ImageID
	Set     *features.BinarySet
	GroupID int64
	Lat     float64
	Lon     float64
}

// Result is one ranked query answer.
type Result struct {
	ID         ImageID
	GroupID    int64
	Similarity float64
}

// Config controls the LSH parameters.
type Config struct {
	// Tables is the number of independent hash tables.
	Tables int
	// BitsPerKey is the number of sampled descriptor bits per key (≤ 32).
	BitsPerKey int
	// HammingMax is the exact-match radius used for re-ranking.
	HammingMax int
	// CandidateLimit caps the number of images re-ranked exactly.
	CandidateLimit int
	// Seed drives the bit sampling.
	Seed int64
}

// DefaultConfig returns LSH parameters tuned for 256-bit descriptors with
// a match radius around DefaultHammingMax: similar descriptors collide in
// at least one table with high probability, random ones almost never.
func DefaultConfig() Config {
	return Config{
		Tables:         4,
		BitsPerKey:     16,
		HammingMax:     features.DefaultHammingMax,
		CandidateLimit: 24,
		Seed:           0x1d5,
	}
}

// Index is a thread-safe similarity index over descriptor sets.
type Index struct {
	mu      sync.RWMutex
	cfg     Config
	entries map[ImageID]*Entry
	tables  []map[uint32][]ImageID
	bitSel  [][]int
}

// New creates an empty index with the given configuration.
func New(cfg Config) *Index {
	if cfg.Tables <= 0 || cfg.BitsPerKey <= 0 || cfg.BitsPerKey > 32 {
		panic(fmt.Sprintf("index: invalid config %+v", cfg))
	}
	if cfg.CandidateLimit <= 0 {
		cfg.CandidateLimit = 24
	}
	if cfg.HammingMax <= 0 {
		cfg.HammingMax = features.DefaultHammingMax
	}
	idx := &Index{
		cfg:     cfg,
		entries: make(map[ImageID]*Entry),
		tables:  make([]map[uint32][]ImageID, cfg.Tables),
		bitSel:  make([][]int, cfg.Tables),
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for t := 0; t < cfg.Tables; t++ {
		idx.tables[t] = make(map[uint32][]ImageID)
		sel := rng.Perm(256)[:cfg.BitsPerKey]
		sort.Ints(sel)
		idx.bitSel[t] = sel
	}
	return idx
}

// Len returns the number of indexed images.
func (x *Index) Len() int {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return len(x.entries)
}

// Add inserts an image. Re-adding an existing ID replaces its metadata
// but keeps old hash buckets pointing at it, so callers should use fresh
// IDs (the server layer guarantees this).
func (x *Index) Add(e *Entry) {
	if e == nil || e.Set == nil {
		return
	}
	x.mu.Lock()
	defer x.mu.Unlock()
	x.entries[e.ID] = e
	for t := range x.tables {
		table := x.tables[t]
		sel := x.bitSel[t]
		for _, d := range e.Set.Descriptors {
			key := hashKey(d, sel)
			bucket := table[key]
			// The same image often hashes many descriptors into one
			// bucket; store it once per bucket.
			if n := len(bucket); n > 0 && bucket[n-1] == e.ID {
				continue
			}
			table[key] = append(bucket, e.ID)
		}
	}
}

// Get returns the entry for id, or nil.
func (x *Index) Get(id ImageID) *Entry {
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.entries[id]
}

// QueryMax returns the indexed image with the highest Equation-2
// similarity to the query set, or (nil, 0) when the index is empty or no
// candidate shares a hash bucket.
func (x *Index) QueryMax(set *features.BinarySet) (*Entry, float64) {
	res := x.QueryTopK(set, 1)
	if len(res) == 0 {
		return nil, 0
	}
	x.mu.RLock()
	defer x.mu.RUnlock()
	return x.entries[res[0].ID], res[0].Similarity
}

// QueryTopK returns the k most similar indexed images, ranked by exact
// Jaccard similarity over the LSH candidate set.
func (x *Index) QueryTopK(set *features.BinarySet, k int) []Result {
	if set.Len() == 0 || k <= 0 {
		return nil
	}
	x.mu.RLock()
	defer x.mu.RUnlock()
	votes := make(map[ImageID]int)
	for t := range x.tables {
		table := x.tables[t]
		sel := x.bitSel[t]
		for _, d := range set.Descriptors {
			for _, id := range table[hashKey(d, sel)] {
				votes[id]++
			}
		}
	}
	if len(votes) == 0 {
		return nil
	}
	type cand struct {
		id    ImageID
		votes int
	}
	cands := make([]cand, 0, len(votes))
	for id, v := range votes {
		cands = append(cands, cand{id, v})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].votes != cands[j].votes {
			return cands[i].votes > cands[j].votes
		}
		return cands[i].id < cands[j].id
	})
	limit := x.cfg.CandidateLimit
	if k > limit {
		limit = k
	}
	if len(cands) > limit {
		cands = cands[:limit]
	}
	results := make([]Result, 0, len(cands))
	for _, c := range cands {
		e := x.entries[c.id]
		if e == nil {
			continue
		}
		sim := features.JaccardBinary(set, e.Set, x.cfg.HammingMax)
		if sim <= 0 {
			// A hash collision with no surviving exact match is not a
			// retrieval result.
			continue
		}
		results = append(results, Result{ID: e.ID, GroupID: e.GroupID, Similarity: sim})
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Similarity != results[j].Similarity {
			return results[i].Similarity > results[j].Similarity
		}
		return results[i].ID < results[j].ID
	})
	if len(results) > k {
		results = results[:k]
	}
	return results
}

// ExhaustiveMax scans every indexed image with the exact similarity and
// returns the best match. It is the brute-force baseline the ablation
// bench compares the LSH path against.
func (x *Index) ExhaustiveMax(set *features.BinarySet) (*Entry, float64) {
	x.mu.RLock()
	defer x.mu.RUnlock()
	var best *Entry
	bestSim := 0.0
	ids := make([]ImageID, 0, len(x.entries))
	for id := range x.entries {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		e := x.entries[id]
		if sim := features.JaccardBinary(set, e.Set, x.cfg.HammingMax); sim > bestSim {
			bestSim, best = sim, e
		}
	}
	return best, bestSim
}

// hashKey samples the selected bits of d into a bucket key.
func hashKey(d features.Descriptor, sel []int) uint32 {
	var key uint32
	for i, b := range sel {
		key |= uint32(d.Bit(b)) << uint(i)
	}
	return key
}

// ForEach calls fn for every entry in ascending ID order. The entries
// are shared; callers must not mutate them.
func (x *Index) ForEach(fn func(*Entry)) {
	x.mu.RLock()
	ids := make([]ImageID, 0, len(x.entries))
	for id := range x.entries {
		ids = append(ids, id)
	}
	x.mu.RUnlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		x.mu.RLock()
		e := x.entries[id]
		x.mu.RUnlock()
		if e != nil {
			fn(e)
		}
	}
}
