package client

import (
	"fmt"

	"bees/internal/blockstore"
	"bees/internal/wire"
)

// Block-transfer RPCs: the client side of the delta-upload protocol
// (see internal/wire/blocks.go for the frame flow). NegotiateBlocks
// gates everything — a server that never answers Hello, or answers
// without the feature bit, keeps the client on whole-image frames.

// NegotiateBlocks performs (or recalls) the Hello feature exchange and
// reports whether both ends speak block transfer. A successful exchange
// is cached for the client's lifetime — server capabilities don't
// change mid-connection — while a transport failure is NOT cached: an
// old server drops the connection on the unknown Hello frame, which
// surfaces here as an exhausted-retries error, and the caller falls
// back to whole-image frames for that call only.
func (c *Client) NegotiateBlocks() (bool, error) {
	if c.opts.DisableBlocks {
		return false, nil
	}
	c.featMu.Lock()
	if c.featNegotiated {
		feats := c.serverFeatures
		c.featMu.Unlock()
		return feats&wire.FeatureBlocks != 0, nil
	}
	c.featMu.Unlock()

	resp, err := c.roundTrip(&wire.Hello{
		Version:  wire.ProtocolVersion,
		Features: wire.FeatureBlocks,
	})
	if err != nil {
		return false, err
	}
	h, ok := resp.(*wire.Hello)
	if !ok {
		return false, fmt.Errorf("client: unexpected response %T", resp)
	}
	c.featMu.Lock()
	c.featNegotiated = true
	c.serverFeatures = h.Features
	c.featMu.Unlock()
	return h.Features&wire.FeatureBlocks != 0, nil
}

// QueryBlocks asks which of the given blocks the server already holds,
// one bool per hash in order.
func (c *Client) QueryBlocks(hashes []blockstore.Hash) ([]bool, error) {
	resp, err := c.roundTrip(&wire.BlockQuery{Hashes: hashes})
	if err != nil {
		return nil, err
	}
	qr, ok := resp.(*wire.BlockQueryResponse)
	if !ok {
		return nil, fmt.Errorf("client: unexpected response %T", resp)
	}
	if len(qr.Have) != len(hashes) {
		return nil, fmt.Errorf("client: got %d block bits for %d hashes", len(qr.Have), len(hashes))
	}
	c.blocksQueried.Add(int64(len(hashes)))
	return qr.Have, nil
}

// PutBlocks uploads blocks for staging on the server. Blocks are
// idempotent by content address, so a retried frame costs bandwidth but
// can never corrupt state — the server just reports them as duplicates.
func (c *Client) PutBlocks(blocks []wire.Block) (stored, dup uint32, err error) {
	resp, err := c.roundTrip(&wire.BlockPut{Blocks: blocks})
	if err != nil {
		return 0, 0, err
	}
	pr, ok := resp.(*wire.BlockPutResponse)
	if !ok {
		return 0, 0, fmt.Errorf("client: unexpected response %T", resp)
	}
	return pr.Stored, pr.Dup, nil
}

// CommitManifests finalizes a delta upload under the caller's nonce
// (see UploadBatchNonce for the replay semantics — commits join the
// same server-side dedup window as whole-image batches). It returns the
// server-assigned IDs in item order.
func (c *Client) CommitManifests(nonce uint64, items []wire.ManifestItem) ([]int64, error) {
	resp, err := c.roundTrip(&wire.ManifestCommit{Nonce: nonce, Items: items})
	if err != nil {
		return nil, err
	}
	cr, ok := resp.(*wire.ManifestCommitResponse)
	if !ok {
		return nil, fmt.Errorf("client: unexpected response %T", resp)
	}
	if len(cr.IDs) != len(items) {
		return nil, fmt.Errorf("client: got %d ids for %d committed items", len(cr.IDs), len(items))
	}
	return cr.IDs, nil
}
