package client

import (
	"testing"
	"time"

	"bees/internal/baseline"
	"bees/internal/core"
	"bees/internal/dataset"
	"bees/internal/energy"
	"bees/internal/netsim"
)

// chaosClient dials srv through a seeded fault-injecting link: latency,
// stalls longer than the request deadline, mid-frame resets via chunked
// partial writes. Probabilities are per chunk, so they are calibrated
// low — a batched query or upload frame is hundreds of chunks, and the
// request deadline must admit a whole batch frame at the injected
// latency while still cutting off a stall.
func chaosClient(t *testing.T, addr string, seed int64) *Client {
	t.Helper()
	c, err := DialOptions(addr, Options{
		DialTimeout:    2 * time.Second,
		RequestTimeout: 2 * time.Second,
		MaxRetries:     12,
		BackoffBase:    2 * time.Millisecond,
		BackoffMax:     20 * time.Millisecond,
		Seed:           seed,
		Dial: netsim.FaultyDialer(netsim.FaultConfig{
			Seed:          seed,
			Latency:       200 * time.Microsecond,
			LatencyJitter: time.Millisecond,
			StallProb:     0.0005,
			StallFor:      3 * time.Second, // beyond the deadline
			ResetProb:     0.001,
			MaxWriteChunk: 4096,
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestChaosPipelineCompletes drives the full BEES pipeline through
// RemoteServer over the flaky link. Every batch must complete with zero
// degradations (the retry budget absorbs the faults) and the server-side
// accounting must match the report exactly — which it can only do if
// retried uploads are deduplicated rather than double-counted.
func TestChaosPipelineCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run takes a few seconds")
	}
	srv, addr := startServer(t)
	c := chaosClient(t, addr, 1)
	remote := NewRemoteServer(c)
	dev := core.NewDevice(nil, netsim.NewLink(256000), energy.DefaultModel())
	scheme := baseline.NewBEES()

	totalUploaded, totalImageBytes := 0, 0
	for batch := 0; batch < 3; batch++ {
		d := dataset.NewDisasterBatch(900+int64(batch), 12, 3, 0)
		r := scheme.ProcessBatch(dev, remote, d.Batch)
		if r.Degraded != 0 {
			t.Fatalf("batch %d: %d requests degraded; retry budget should absorb the faults (last err: %v)",
				batch, r.Degraded, remote.Err())
		}
		totalUploaded += r.Uploaded
		totalImageBytes += r.ImageBytes
	}
	if err := remote.Err(); err != nil {
		t.Fatalf("transport errors leaked through: %v", err)
	}

	st := srv.Stats()
	if st.Images != totalUploaded {
		t.Fatalf("server stored %d images, reports say %d — retried uploads double-counted or lost",
			st.Images, totalUploaded)
	}
	if st.BytesReceived != int64(totalImageBytes) {
		t.Fatalf("server received %d bytes, reports say %d", st.BytesReceived, totalImageBytes)
	}
	if m := c.Metrics(); m.Retries == 0 {
		t.Fatal("fault link injected nothing; chaos test proved nothing — raise fault rates")
	} else {
		t.Logf("chaos survived: %d retries, %d redials", m.Retries, m.Redials)
	}
}

// TestChaosDegradesWhenLinkIsDead checks the other side of the budget:
// when every attempt fails, the pipeline still completes — degraded, not
// wedged — and the report counts every degradation.
func TestChaosDegradesWhenLinkIsDead(t *testing.T) {
	_, addr := startServer(t)
	c, err := DialOptions(addr, Options{
		RequestTimeout: 200 * time.Millisecond,
		MaxRetries:     2,
		BackoffBase:    time.Millisecond,
		BackoffMax:     2 * time.Millisecond,
		Seed:           1,
		Dial: netsim.FaultyDialer(netsim.FaultConfig{
			Seed:      1,
			ResetProb: 1, // every I/O kills the connection
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	remote := NewRemoteServer(c)
	dev := core.NewDevice(nil, netsim.NewLink(256000), energy.DefaultModel())
	scheme := baseline.NewBEES()

	done := make(chan core.BatchReport, 1)
	go func() {
		d := dataset.NewDisasterBatch(950, 4, 0, 0)
		done <- scheme.ProcessBatch(dev, remote, d.Batch)
	}()
	var r core.BatchReport
	select {
	case r = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("pipeline wedged on a dead link")
	}
	if r.Total != 4 {
		t.Fatalf("batch did not complete: %+v", r)
	}
	// Every query (one per image) and every attempted upload degraded.
	if want := r.Total + r.Uploaded; r.Degraded != want {
		t.Fatalf("Degraded = %d, want %d", r.Degraded, want)
	}
	if remote.Err() == nil {
		t.Fatal("Err should report the dead link")
	}
}
