package client

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"bees/internal/blockstore"
	"bees/internal/diskfault"
	"bees/internal/features"
	"bees/internal/server"
	"bees/internal/wal"
	"bees/internal/wire"
)

// chaosBlockSize keeps the delta-upload path multi-block with tiny blobs
// so a crash can land between individual block stagings.
const chaosBlockSize = 4096

// chaosScript is the deterministic client workload the crash sweep runs:
// two whole-image batches, a three-block delta upload, a mid-script
// checkpoint, a second delta upload sharing two of the first one's
// blocks (refcount exercise), and a final batch. Fixed nonces make the
// crash-free and kill-anywhere runs comparable frame by frame.
type chaosScript struct {
	sets   []*features.BinarySet
	blobs  [][]byte
	blobA  []byte
	blobB  []byte
	manA   blockstore.Manifest
	manB   blockstore.Manifest
	blocksA [][]byte
	blocksB [][]byte
}

func newChaosScript() *chaosScript {
	rng := rand.New(rand.NewSource(7701))
	sc := &chaosScript{}
	for i := 0; i < 9; i++ {
		set := &features.BinarySet{Descriptors: make([]features.Descriptor, 3+rng.Intn(4))}
		for j := range set.Descriptors {
			for w := 0; w < 4; w++ {
				set.Descriptors[j][w] = rng.Uint64()
			}
		}
		sc.sets = append(sc.sets, set)
		blob := make([]byte, 600+rng.Intn(800))
		rng.Read(blob)
		sc.blobs = append(sc.blobs, blob)
	}
	sc.blobA = make([]byte, 2*chaosBlockSize+1800) // three blocks
	rng.Read(sc.blobA)
	// blobB shares blobA's first two blocks and adds one new tail block.
	tail := make([]byte, 1500)
	rng.Read(tail)
	sc.blobB = append(append([]byte(nil), sc.blobA[:2*chaosBlockSize]...), tail...)
	sc.manA = blockstore.ManifestOf(sc.blobA, chaosBlockSize)
	sc.manB = blockstore.ManifestOf(sc.blobB, chaosBlockSize)
	sc.blocksA = blockstore.Split(sc.blobA, chaosBlockSize)
	sc.blocksB = blockstore.Split(sc.blobB, chaosBlockSize)
	return sc
}

func (sc *chaosScript) batchItems(lo, hi int) []wire.UploadBatchItem {
	items := make([]wire.UploadBatchItem, 0, hi-lo)
	for i := lo; i < hi; i++ {
		items = append(items, wire.UploadBatchItem{
			Set:     sc.sets[i],
			GroupID: int64(i),
			Lat:     float64(i),
			Lon:     -float64(i),
			Blob:    sc.blobs[i],
		})
	}
	return items
}

func (sc *chaosScript) manifestItem(idx int, m blockstore.Manifest) wire.ManifestItem {
	return wire.ManifestItem{
		Set:        sc.sets[idx],
		GroupID:    int64(idx),
		Lat:        float64(idx),
		Lon:        -float64(idx),
		TotalBytes: m.TotalBytes,
		BlockSize:  uint32(m.BlockSize),
		Hashes:     m.Hashes,
	}
}

// putMissing is the client half of the delta protocol: query, then put
// only what the server lacks. Both frames are idempotent, so a retry
// after a crash can never double-store.
func putMissing(c *Client, hashes []blockstore.Hash, blocks [][]byte) error {
	have, err := c.QueryBlocks(hashes)
	if err != nil {
		return err
	}
	var put []wire.Block
	for i := range hashes {
		if !have[i] {
			put = append(put, wire.Block{Hash: hashes[i], Data: blocks[i]})
		}
	}
	if len(put) == 0 {
		return nil
	}
	_, _, err = c.PutBlocks(put)
	return err
}

// chaosStep is one retryable unit of the script. images/bytes are what
// the step adds to server accounting once acknowledged — the sweep
// asserts a recovered server holds exactly the acked prefix.
type chaosStep struct {
	name   string
	nonce  uint64
	images int
	bytes  int64
	run    func(c *Client, srv *server.Server, snap string, got map[string][]int64) error
}

func chaosSteps(sc *chaosScript) []chaosStep {
	blobBytes := func(lo, hi int) (n int64) {
		for i := lo; i < hi; i++ {
			n += int64(len(sc.blobs[i]))
		}
		return
	}
	return []chaosStep{
		{name: "batch1", nonce: 0xBEE50001, images: 3, bytes: blobBytes(0, 3),
			run: func(c *Client, _ *server.Server, _ string, got map[string][]int64) error {
				ids, err := c.UploadBatchNonce(0xBEE50001, sc.batchItems(0, 3))
				if err == nil {
					got["batch1"] = ids
				}
				return err
			}},
		{name: "batch2", nonce: 0xBEE50002, images: 2, bytes: blobBytes(3, 5),
			run: func(c *Client, _ *server.Server, _ string, got map[string][]int64) error {
				ids, err := c.UploadBatchNonce(0xBEE50002, sc.batchItems(3, 5))
				if err == nil {
					got["batch2"] = ids
				}
				return err
			}},
		{name: "putA",
			run: func(c *Client, _ *server.Server, _ string, _ map[string][]int64) error {
				return putMissing(c, sc.manA.Hashes, sc.blocksA)
			}},
		{name: "commitA", nonce: 0xBEE50003, images: 1, bytes: sc.manA.TotalBytes,
			run: func(c *Client, _ *server.Server, _ string, got map[string][]int64) error {
				ids, err := c.CommitManifests(0xBEE50003, []wire.ManifestItem{sc.manifestItem(5, sc.manA)})
				if err == nil {
					got["commitA"] = ids
				}
				return err
			}},
		{name: "checkpoint",
			run: func(_ *Client, srv *server.Server, snap string, _ map[string][]int64) error {
				return srv.Checkpoint(snap)
			}},
		{name: "putB",
			run: func(c *Client, _ *server.Server, _ string, _ map[string][]int64) error {
				return putMissing(c, sc.manB.Hashes, sc.blocksB)
			}},
		{name: "commitB", nonce: 0xBEE50004, images: 1, bytes: sc.manB.TotalBytes,
			run: func(c *Client, _ *server.Server, _ string, got map[string][]int64) error {
				ids, err := c.CommitManifests(0xBEE50004, []wire.ManifestItem{sc.manifestItem(6, sc.manB)})
				if err == nil {
					got["commitB"] = ids
				}
				return err
			}},
		{name: "batch3", nonce: 0xBEE50005, images: 2, bytes: blobBytes(7, 9),
			run: func(c *Client, _ *server.Server, _ string, got map[string][]int64) error {
				ids, err := c.UploadBatchNonce(0xBEE50005, sc.batchItems(7, 9))
				if err == nil {
					got["batch3"] = ids
				}
				return err
			}},
	}
}

// recoverChaos rebuilds the server from the state directory through the
// given filesystem (nil = the real one) and serves it on addr ("" picks
// a port). SyncEachRecord so every acknowledgement implies durability —
// the property the sweep's byte-identical assertion relies on.
func tryRecoverChaos(stateDir, addr string, fs diskfault.FS) (*server.Server, *server.TCPServer, string, error) {
	srv, _, err := server.Recover(server.RecoverConfig{
		Server:       server.Config{BlockSize: chaosBlockSize, FS: fs},
		SnapshotPath: filepath.Join(stateDir, "state.bees"),
		WAL: wal.Config{
			Dir:    filepath.Join(stateDir, "wal"),
			Policy: wal.SyncEachRecord,
		},
	})
	if err != nil {
		return nil, nil, "", err
	}
	tcp := server.NewTCP(srv)
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	bound, err := tcp.Listen(addr)
	if err != nil {
		return nil, nil, "", err
	}
	return srv, tcp, bound.String(), nil
}

func recoverChaos(t *testing.T, stateDir, addr string, fs diskfault.FS) (*server.Server, *server.TCPServer, string) {
	t.Helper()
	srv, tcp, bound, err := tryRecoverChaos(stateDir, addr, fs)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	return srv, tcp, bound
}

func chaosDial(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := DialOptions(addr, Options{
		DialTimeout:        time.Second,
		RequestTimeout:     2 * time.Second,
		MaxRetries:         2,
		BackoffBase:        time.Millisecond,
		BackoffMax:         5 * time.Millisecond,
		BreakerCooldown:    time.Millisecond,
		BreakerCooldownMax: 5 * time.Millisecond,
		Seed:               1,
	})
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	return c
}

// replayAllNonces retries every nonce-carrying frame of the script
// against a recovered server — the lost-ack model, after a crash. Every
// replay must answer with the originally assigned IDs (dedup seeded
// from snapshot + WAL) and must not change server state.
func replayAllNonces(t *testing.T, c *Client, sc *chaosScript, srv *server.Server, want map[string][]int64) {
	t.Helper()
	before := srv.Stats()
	replays := []struct {
		name string
		run  func() ([]int64, error)
	}{
		{"batch1", func() ([]int64, error) { return c.UploadBatchNonce(0xBEE50001, sc.batchItems(0, 3)) }},
		{"batch2", func() ([]int64, error) { return c.UploadBatchNonce(0xBEE50002, sc.batchItems(3, 5)) }},
		{"commitA", func() ([]int64, error) {
			return c.CommitManifests(0xBEE50003, []wire.ManifestItem{sc.manifestItem(5, sc.manA)})
		}},
		{"commitB", func() ([]int64, error) {
			return c.CommitManifests(0xBEE50004, []wire.ManifestItem{sc.manifestItem(6, sc.manB)})
		}},
		{"batch3", func() ([]int64, error) { return c.UploadBatchNonce(0xBEE50005, sc.batchItems(7, 9)) }},
	}
	for _, r := range replays {
		ids, err := r.run()
		if err != nil {
			t.Fatalf("replay %s: %v", r.name, err)
		}
		if !reflect.DeepEqual(ids, want[r.name]) {
			t.Fatalf("replay %s returned %v, original IDs were %v", r.name, ids, want[r.name])
		}
	}
	if after := srv.Stats(); after != before {
		t.Fatalf("nonce replays mutated state: %+v -> %+v", before, after)
	}
}

// TestChaosCrashRecoveryZeroLoss is the PR's end-to-end proof: beesd is
// killed at EVERY mutating filesystem operation of a full client
// workload — mid WAL append, mid snapshot rename, mid checkpoint
// truncation — restarted over the surviving files, and the client
// retries the failed frame with its original nonce. After every crash
// point the final state (Stats, block refcounts, assigned upload IDs)
// must be byte-identical to a run that never crashed: torn WAL tails
// are truncated, acknowledged frames are never lost, and un-acked
// frames are never answered from the dedup window as if they had been
// applied.
func TestChaosCrashRecoveryZeroLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("kill-anywhere sweep restarts the server dozens of times")
	}
	sc := newChaosScript()
	steps := chaosSteps(sc)

	// --- Baseline: the same script with no faults. ----------------------
	baseDir := t.TempDir()
	baseSrv, baseTCP, baseAddr := recoverChaos(t, baseDir, "", nil)
	baseClient := chaosDial(t, baseAddr)
	wantIDs := map[string][]int64{}
	baseSnap := filepath.Join(baseDir, "state.bees")
	for _, st := range steps {
		if err := st.run(baseClient, baseSrv, baseSnap, wantIDs); err != nil {
			t.Fatalf("baseline %s: %v", st.name, err)
		}
	}
	wantStats := baseSrv.Stats()
	wantRefs := baseSrv.Blocks().RefCounts()
	baseClient.Close()
	if err := baseTCP.Close(); err != nil {
		t.Fatal(err)
	}
	if wantStats.Images == 0 || len(wantRefs) != 4 {
		t.Fatalf("baseline unhealthy: %+v, %d blocks", wantStats, len(wantRefs))
	}

	// --- Kill-anywhere sweep: crash at FS op k, restart, retry. ---------
	for k := int64(1); ; k++ {
		faulty := diskfault.New(diskfault.Config{Seed: k, CrashAfterOps: k})
		stateDir := t.TempDir()
		snap := filepath.Join(stateDir, "state.bees")
		crashes := 0
		srv, tcp, addr, err := tryRecoverChaos(stateDir, "", faulty)
		if err != nil {
			// The crash point landed inside the initial WAL open: the
			// process died before serving a single frame. Restart clean.
			if !faulty.Crashed() {
				t.Fatalf("k=%d: initial recover failed without a crash: %v", k, err)
			}
			crashes++
			srv, tcp, addr = recoverChaos(t, stateDir, "", nil)
		}
		c := chaosDial(t, addr)

		gotIDs := map[string][]int64{}
		ackedImages, ackedBytes := 0, int64(0)
		for i := 0; i < len(steps); {
			err := steps[i].run(c, srv, snap, gotIDs)
			if err == nil {
				ackedImages += steps[i].images
				ackedBytes += steps[i].bytes
				i++
				continue
			}
			if !faulty.Crashed() {
				t.Fatalf("k=%d: step %s failed without a crash: %v", k, steps[i].name, err)
			}
			if crashes++; crashes > 1 {
				t.Fatalf("k=%d: second failure after restart at step %s: %v", k, steps[i].name, err)
			}
			// The kill: drop the process, restart over the surviving
			// files with a healthy disk, same address (the client's
			// breaker redials transparently).
			tcp.Close()
			if l := srv.WAL(); l != nil {
				l.Close()
			}
			srv, tcp, _ = recoverChaos(t, stateDir, addr, nil)
			// Recovery must hold the acknowledged prefix — plus, at most,
			// the one in-flight frame (its record can reach the platter
			// with the crash landing between persistence and the ack; the
			// nonce retry below is then answered from the rebuilt dedup
			// window with the original IDs). What can never appear is a
			// frame whose record was torn: un-persisted means unapplied.
			st := srv.Stats()
			exact := st.Images == ackedImages && st.BytesReceived == ackedBytes
			lostAck := st.Images == ackedImages+steps[i].images &&
				st.BytesReceived == ackedBytes+steps[i].bytes
			if !exact && !lostAck {
				t.Fatalf("k=%d: recovered server holds %+v after step %s, acked prefix was %d images / %d bytes",
					k, st, steps[i].name, ackedImages, ackedBytes)
			}
			// Retry the failed step with the same nonce (i unchanged).
		}

		if crashes == 0 && !faulty.Crashed() {
			// Crash point beyond a full clean pass: every op is covered.
			c.Close()
			tcp.Close()
			t.Logf("sweep covered %d crash points", k-1)
			break
		}

		// --- Exactly-once accounting at this crash point. ---------------
		if st := srv.Stats(); st != wantStats {
			t.Fatalf("k=%d: final stats %+v, crash-free run had %+v", k, st, wantStats)
		}
		if refs := srv.Blocks().RefCounts(); !reflect.DeepEqual(refs, wantRefs) {
			t.Fatalf("k=%d: refcounts %v, crash-free run had %v", k, refs, wantRefs)
		}
		if !reflect.DeepEqual(gotIDs, wantIDs) {
			t.Fatalf("k=%d: assigned IDs %v, crash-free run assigned %v", k, gotIDs, wantIDs)
		}

		// --- And once more from disk: restart clean, replay every nonce.
		c.Close()
		tcp.Close()
		if l := srv.WAL(); l != nil {
			l.Close()
		}
		srv2, tcp2, addr2 := recoverChaos(t, stateDir, "", nil)
		if st := srv2.Stats(); st != wantStats {
			t.Fatalf("k=%d: state recovered from disk is %+v, want %+v", k, st, wantStats)
		}
		if refs := srv2.Blocks().RefCounts(); !reflect.DeepEqual(refs, wantRefs) {
			t.Fatalf("k=%d: refcounts recovered from disk %v, want %v", k, refs, wantRefs)
		}
		c2 := chaosDial(t, addr2)
		replayAllNonces(t, c2, sc, srv2, wantIDs)
		c2.Close()
		tcp2.Close()
		if l := srv2.WAL(); l != nil {
			l.Close()
		}
	}
}
