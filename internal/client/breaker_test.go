package client

import (
	"errors"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bees/internal/wire"
)

// scriptedServer runs a raw wire responder so tests control exactly what
// the server answers (the real TCPServer only sheds under actual load).
func scriptedServer(t *testing.T, respond func(msg any) any) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				for {
					msg, err := wire.ReadFrame(conn)
					if err != nil {
						return
					}
					if err := wire.WriteFrame(conn, respond(msg)); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// TestBusyHoldDoesNotConsumeRetryBudget pins the BusyResponse contract:
// a shed request is held for the server's retry-after hint and resent —
// with zero retries consumed, no breaker trip, and the request
// ultimately succeeding once the server admits it.
func TestBusyHoldDoesNotConsumeRetryBudget(t *testing.T) {
	var mu sync.Mutex
	busyLeft := 3
	addr := scriptedServer(t, func(msg any) any {
		mu.Lock()
		defer mu.Unlock()
		if busyLeft > 0 {
			busyLeft--
			return &wire.BusyResponse{RetryAfterMs: 30}
		}
		return &wire.UploadResponse{ID: 7}
	})
	c, err := DialOptions(addr, Options{MaxRetries: 0, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	id, err := c.Upload(nil, 1, 0, 0, []byte("x"))
	elapsed := time.Since(start)
	if err != nil || id != 7 {
		t.Fatalf("upload after busy holds: id=%d err=%v", id, err)
	}
	// Three 30ms holds must actually pace the client.
	if elapsed < 80*time.Millisecond {
		t.Fatalf("client resent after %v, ignored the retry-after hints", elapsed)
	}
	m := c.Metrics()
	if m.Retries != 0 {
		t.Fatalf("busy holds consumed %d retries", m.Retries)
	}
	if m.BusyHolds != 3 {
		t.Fatalf("BusyHolds = %d, want 3", m.BusyHolds)
	}
	if m.BreakerTrips != 0 || m.BreakerState != BreakerClosed {
		t.Fatalf("busy responses affected the breaker: %+v", m)
	}
}

// TestBusyWaitsBounded: an always-busy server must eventually surface an
// error instead of holding a request forever (the pipeline then parks
// the chunk in the outbox).
func TestBusyWaitsBounded(t *testing.T) {
	addr := scriptedServer(t, func(any) any {
		return &wire.BusyResponse{RetryAfterMs: 5}
	})
	c, err := DialOptions(addr, Options{MaxRetries: 0, MaxBusyWaits: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Upload(nil, 1, 0, 0, []byte("x"))
	if err == nil || !strings.Contains(err.Error(), "busy") {
		t.Fatalf("err = %v, want busy exhaustion", err)
	}
	if m := c.Metrics(); m.BusyHolds != 3 { // MaxBusyWaits holds + the final refusal
		t.Fatalf("BusyHolds = %d, want 3", m.BusyHolds)
	}
}

// TestBreakerOpensAndRecovers drives the breaker through its full cycle:
// consecutive transport failures trip it open, the open hold paces the
// next attempt, and a successful probe closes it again.
func TestBreakerOpensAndRecovers(t *testing.T) {
	_, addr := startServer(t)
	var down atomic.Bool
	opts := Options{
		MaxRetries:         0,
		BackoffBase:        time.Millisecond,
		BackoffMax:         2 * time.Millisecond,
		BreakerThreshold:   2,
		BreakerCooldown:    20 * time.Millisecond,
		BreakerCooldownMax: 40 * time.Millisecond,
		Seed:               5,
		Dial: func(a string, timeout time.Duration) (net.Conn, error) {
			if down.Load() {
				return nil, errors.New("partitioned")
			}
			return net.DialTimeout("tcp", a, timeout)
		},
	}
	c, err := DialOptions(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Partition: kill the live connection and block redials.
	down.Store(true)
	c.stateMu.Lock()
	c.conn.Close()
	c.stateMu.Unlock()

	for i := 0; i < 2; i++ {
		if _, _, err := c.Stats(); err == nil {
			t.Fatalf("request %d succeeded through a partition", i)
		}
	}
	m := c.Metrics()
	if m.BreakerState != BreakerOpen || m.BreakerTrips != 1 {
		t.Fatalf("after %d failures: state=%d trips=%d, want open after threshold 2",
			2, m.BreakerState, m.BreakerTrips)
	}

	// Heal. The next request is the half-open probe: it must wait out the
	// open hold (jittered 10–30ms), succeed, and close the breaker.
	down.Store(false)
	start := time.Now()
	if _, _, err := c.Stats(); err != nil {
		t.Fatalf("probe through healed link failed: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("probe ran after %v, before the open hold expired", elapsed)
	}
	if m := c.Metrics(); m.BreakerState != BreakerClosed {
		t.Fatalf("breaker did not close after successful probe: state=%d", m.BreakerState)
	}
}

// TestBreakerHoldCutShortByClose: Close must interrupt an open-state
// hold promptly instead of letting the request sleep it out.
func TestBreakerHoldCutShortByClose(t *testing.T) {
	addr := scriptedServer(t, func(any) any {
		return &wire.BusyResponse{RetryAfterMs: 60_000}
	})
	c, err := DialOptions(addr, Options{MaxRetries: 0, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, _, err := c.Stats()
		errCh <- err
	}()
	// Let the request reach the 60s busy hold, then close underneath it.
	time.Sleep(50 * time.Millisecond)
	c.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not interrupt the busy hold")
	}
}
