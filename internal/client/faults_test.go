package client

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"bees/internal/netsim"
	"bees/internal/server"
	"bees/internal/wire"
)

// blackHole listens and reads forever without ever responding — the
// shape of a server stalled behind a dead disaster uplink.
func blackHole(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				buf := make([]byte, 4096)
				for {
					if _, err := conn.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// TestCloseUnblocksStuckRequest is the regression test for the Close
// deadlock: Close used to take the same mutex an in-flight roundTrip
// held while blocked reading from a dead server, so it never returned.
func TestCloseUnblocksStuckRequest(t *testing.T) {
	addr := blackHole(t)
	c, err := DialOptions(addr, Options{
		RequestTimeout: time.Minute, // far longer than the test
		MaxRetries:     -1,
	})
	if err != nil {
		t.Fatal(err)
	}

	reqDone := make(chan error, 1)
	go func() {
		_, _, err := c.Stats()
		reqDone <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the request block on the read

	closeDone := make(chan error, 1)
	go func() { closeDone <- c.Close() }()
	select {
	case err := <-closeDone:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close deadlocked behind a stuck request")
	}
	select {
	case err := <-reqDone:
		if err == nil {
			t.Fatal("request against a black hole succeeded")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("request still blocked after Close")
	}
}

// TestCloseCutsBackoffShort checks Close also interrupts a client
// sleeping between retries.
func TestCloseCutsBackoffShort(t *testing.T) {
	addr := blackHole(t)
	c, err := DialOptions(addr, Options{
		RequestTimeout: 50 * time.Millisecond,
		MaxRetries:     100,
		BackoffBase:    30 * time.Second, // one backoff dwarfs the test
		BackoffMax:     30 * time.Second,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	reqDone := make(chan error, 1)
	go func() {
		_, _, err := c.Stats()
		reqDone <- err
	}()
	time.Sleep(200 * time.Millisecond) // first attempt times out, backoff starts
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-reqDone:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("backoff sleep survived Close")
	}
}

// TestRetryReconnects drives a deterministic failure: the first
// connection dies on its first I/O, and the request must succeed over an
// automatically re-dialed clean connection.
func TestRetryReconnects(t *testing.T) {
	_, addr := startServer(t)
	var dials int
	var mu sync.Mutex
	dialer := func(a string, timeout time.Duration) (net.Conn, error) {
		conn, err := net.DialTimeout("tcp", a, timeout)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		dials++
		first := dials == 1
		mu.Unlock()
		if first {
			return netsim.NewFaultConn(conn, netsim.FaultConfig{Seed: 1, ResetProb: 1}), nil
		}
		return conn, nil
	}
	c, err := DialOptions(addr, Options{
		RequestTimeout: time.Second,
		MaxRetries:     3,
		BackoffBase:    time.Millisecond,
		Seed:           1,
		Dial:           dialer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.Stats(); err != nil {
		t.Fatalf("request did not survive a dead first connection: %v", err)
	}
	m := c.Metrics()
	if m.Retries < 1 || m.Redials < 1 {
		t.Fatalf("metrics = %+v, want at least one retry and one redial", m)
	}
}

// TestNoRetryOnServerError checks failures the transport cannot cure —
// a server-reported error, or a message the protocol cannot encode — are
// surfaced immediately instead of being retried.
func TestNoRetryOnServerError(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	// The server answers frames it cannot handle with MsgError; an
	// UploadResponse is a valid frame no server expects.
	if _, err := c.roundTrip(&wire.UploadResponse{ID: 1}); err == nil {
		t.Fatal("server accepted a bogus message")
	}
	if _, err := c.roundTrip(&struct{}{}); !errors.Is(err, wire.ErrUnencodable) {
		t.Fatalf("err = %v, want ErrUnencodable", err)
	}
	if m := c.Metrics(); m.Retries != 0 {
		t.Fatalf("client burned %d retries on unretriable failures", m.Retries)
	}
	// Neither failure may poison the connection.
	if _, _, err := c.Stats(); err != nil {
		t.Fatalf("connection unusable after unretriable failures: %v", err)
	}
	if m := c.Metrics(); m.Redials != 0 {
		t.Fatalf("client redialed %d times; connection should have survived", m.Redials)
	}
}

// TestRemoteServerErrRace hammers RemoteServer from many goroutines
// against a dead server; run under -race this catches unsynchronized
// lastErr access.
func TestRemoteServerErrRace(t *testing.T) {
	srv := server.NewDefault()
	tcp := server.NewTCP(srv)
	bound, err := tcp.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := DialOptions(bound.String(), Options{
		RequestTimeout: 100 * time.Millisecond,
		MaxRetries:     0,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tcp.Close()
	defer c.Close()
	remote := NewRemoteServer(c)
	sets := testSets(t, 1)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			remote.QueryMax(sets[0])
			remote.Upload(sets[0], server.UploadMeta{Bytes: 4})
			remote.Err()
		}()
	}
	wg.Wait()
	if remote.Err() == nil {
		t.Fatal("Err lost the failures")
	}
	if remote.TakeDegraded() != 16 {
		t.Fatal("degradation count wrong")
	}
	if remote.TakeDegraded() != 0 {
		t.Fatal("TakeDegraded did not reset")
	}
}
