package client

import (
	"path/filepath"
	"testing"
	"time"

	"bees/internal/core"
	"bees/internal/dataset"
	"bees/internal/energy"
	"bees/internal/netsim"
	"bees/internal/outbox"
	"bees/internal/server"
	"bees/internal/telemetry"
)

// partitionPipelineConfig freezes the adaptive knobs so compressed sizes
// do not depend on battery state: the clean-run and partition-run byte
// counts must match to the byte.
func partitionPipelineConfig(box *outbox.Outbox, tel *telemetry.Registry) core.Config {
	cfg := core.DefaultConfig()
	cfg.Adaptive = false
	cfg.UploadWindow = 4
	cfg.Outbox = box
	cfg.Telemetry = tel
	return cfg
}

func runPartitionBatch(t *testing.T, cfg core.Config, api core.ServerAPI, seed int64, n int) core.BatchReport {
	t.Helper()
	d := dataset.NewDisasterBatch(seed, n, 0, 0)
	dev := core.NewDevice(nil, netsim.NewLink(256000), energy.DefaultModel())
	return core.New(cfg).ProcessBatch(dev, api, d.Batch)
}

// TestChaosPartitionZeroImageLoss is the PR's end-to-end proof: the full
// BEES pipeline runs through a long network partition, the device
// outbox catches every upload chunk the dead link rejected, the beesd
// process is killed and restarted from its snapshot, and a background
// drainer replays the backlog through the healed link. At the end the
// server must hold exactly the images a never-partitioned run would
// have delivered — zero loss, zero double counting — including a chunk
// that is deliberately replayed twice (dedup by original nonce).
func TestChaosPartitionZeroImageLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline + partition + server restart takes a while")
	}
	const batchSeed, batchSize = 900, 16

	// --- Baseline: the same batch over a healthy link. ------------------
	_, cleanAddr := startServer(t)
	cleanClient := dial(t, cleanAddr)
	cleanReport := runPartitionBatch(t, partitionPipelineConfig(nil, nil),
		NewRemoteServer(cleanClient), batchSeed, batchSize)
	if cleanReport.Degraded != 0 || cleanReport.Uploaded == 0 {
		t.Fatalf("clean run unhealthy: %+v", cleanReport)
	}
	wantImages, wantBytes, err := cleanClient.Stats()
	if err != nil {
		t.Fatal(err)
	}
	cleanClient.Close()

	// --- The system under test: server with a snapshot file. ------------
	stateDir := t.TempDir()
	snapPath := filepath.Join(stateDir, "state.bees")
	srv := server.NewDefault()
	tcp := server.NewTCP(srv)
	addr, err := tcp.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrStr := addr.String()

	tel := telemetry.NewRegistry()
	box, err := outbox.Open(outbox.Config{Dir: filepath.Join(stateDir, "outbox"), Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	part := netsim.NewPartition()
	c, err := DialOptions(addrStr, Options{
		DialTimeout:        time.Second,
		RequestTimeout:     time.Second,
		MaxRetries:         2,
		BackoffBase:        time.Millisecond,
		BackoffMax:         5 * time.Millisecond,
		BreakerCooldown:    2 * time.Millisecond,
		BreakerCooldownMax: 10 * time.Millisecond,
		Seed:               42,
		Telemetry:          tel,
		Dial:               part.Dialer(nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	remote := NewRemoteServer(c)

	// --- Partition, then push the whole batch through it. ---------------
	part.Sever()
	report := runPartitionBatch(t, partitionPipelineConfig(box, tel), remote, batchSeed, batchSize)
	if report.Uploaded != cleanReport.Uploaded {
		t.Fatalf("partitioned run selected %d uploads, clean run %d — selection must not depend on the link",
			report.Uploaded, cleanReport.Uploaded)
	}
	wantChunks := (report.Uploaded + 3) / 4 // UploadWindow 4
	if got := box.Len(); got != wantChunks {
		t.Fatalf("outbox caught %d chunks, want %d", got, wantChunks)
	}
	if images := srv.Stats().Images; images != 0 {
		t.Fatalf("server received %d images through a severed link", images)
	}
	if m := c.Metrics(); m.BreakerTrips == 0 {
		t.Error("a full batch of failures never tripped the breaker")
	}

	// --- Heal; replay the first chunk twice (lost-response model). ------
	part.Heal()
	first, ok := box.Peek()
	if !ok {
		t.Fatal("outbox empty after partitioned run")
	}
	for i := 0; i < 2; i++ { // second replay = retry of a lost ack
		if err := remote.UploadBatchWithNonce(first.Nonce, first.Items); err != nil {
			t.Fatalf("healed replay %d failed: %v", i, err)
		}
	}
	if images := srv.Stats().Images; images != len(first.Items) {
		t.Fatalf("double replay stored %d images, want %d (nonce dedup)", images, len(first.Items))
	}
	box.Ack(first)

	// --- Kill beesd (snapshot + restart on the same address). -----------
	if err := srv.SaveSnapshotFile(snapPath); err != nil {
		t.Fatal(err)
	}
	if err := tcp.Close(); err != nil {
		t.Fatal(err)
	}
	srv2 := server.NewDefault()
	if err := srv2.LoadSnapshotFile(snapPath); err != nil {
		t.Fatal(err)
	}
	tcp2 := server.NewTCP(srv2)
	if _, err := tcp2.Listen(addrStr); err != nil {
		t.Fatalf("restart on %s: %v", addrStr, err)
	}
	defer tcp2.Close()

	// --- Background drain through the healed link. ----------------------
	drainer := outbox.NewDrainer(box, func(ch *outbox.Chunk) error {
		return remote.UploadBatchWithNonce(ch.Nonce, ch.Items)
	})
	drainer.Interval = 10 * time.Millisecond
	drainer.Start()
	defer drainer.Close()
	deadline := time.Now().Add(30 * time.Second)
	for box.Len() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("outbox never drained: %d chunks left", box.Len())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// --- Exactly-once accounting. ---------------------------------------
	final := srv2.Stats()
	gotImages, gotBytes := final.Images, final.BytesReceived
	if int64(gotImages) != wantImages || gotBytes != wantBytes {
		t.Fatalf("after partition+restart+drain: %d images / %d bytes, clean run had %d / %d",
			gotImages, gotBytes, wantImages, wantBytes)
	}
	// The spill directory must be empty again (acks removed the files).
	box2, err := outbox.Open(outbox.Config{Dir: filepath.Join(stateDir, "outbox")})
	if err != nil {
		t.Fatal(err)
	}
	if box2.Len() != 0 {
		t.Fatalf("%d chunk files survived the drain", box2.Len())
	}
	if st := box.Stats(); st.Replayed != int64(wantChunks) {
		t.Fatalf("outbox.replayed = %d, want %d", st.Replayed, wantChunks)
	}
}
