package client

import (
	"fmt"

	"bees/internal/server"
	"bees/internal/wire"
)

// Cluster RPCs: the client side of the sharded-cluster protocol
// (internal/wire/cluster.go). The cluster router (internal/cluster)
// holds one Client per node and speaks these; each call inherits the
// client's full retry/breaker/busy-hold machinery, so a router fan-out
// rides the same transport hardening as a phone's upload.

// ShardRoute sends one shard frame — any mix of block query, block
// staging, and manifest commit — and returns the shard's answer.
func (c *Client) ShardRoute(m *wire.ShardRoute) (*wire.ShardRouteResponse, error) {
	resp, err := c.roundTrip(m)
	if err != nil {
		return nil, err
	}
	rr, ok := resp.(*wire.ShardRouteResponse)
	if !ok {
		return nil, fmt.Errorf("client: unexpected response %T", resp)
	}
	if len(rr.Have) != len(m.Query) {
		return nil, fmt.Errorf("client: got %d have bits for %d queried hashes", len(rr.Have), len(m.Query))
	}
	if len(rr.IDs) != len(m.Items) {
		return nil, fmt.Errorf("client: got %d ids for %d committed items", len(rr.IDs), len(m.Items))
	}
	return rr, nil
}

// ShardQuery runs the CBRD candidate query for the given sets against
// the named shards on the connected node.
func (c *Client) ShardQuery(m *wire.ShardQuery) (*wire.ShardQueryResponse, error) {
	resp, err := c.roundTrip(m)
	if err != nil {
		return nil, err
	}
	qr, ok := resp.(*wire.ShardQueryResponse)
	if !ok {
		return nil, fmt.Errorf("client: unexpected response %T", resp)
	}
	if len(qr.Stats) != len(m.Shards) {
		return nil, fmt.Errorf("client: got %d shard stats for %d shards", len(qr.Stats), len(m.Shards))
	}
	if len(qr.PerSet) != len(m.Sets) {
		return nil, fmt.Errorf("client: got %d candidate lists for %d sets", len(qr.PerSet), len(m.Sets))
	}
	return qr, nil
}

// ShardSync pulls one shard's full replica state from the connected
// node: the deterministic snapshot stream plus the nonce-dedup window.
func (c *Client) ShardSync(shard uint32) (*wire.ShardSyncResponse, error) {
	resp, err := c.roundTrip(&wire.ShardSync{Shard: shard})
	if err != nil {
		return nil, err
	}
	sr, ok := resp.(*wire.ShardSyncResponse)
	if !ok {
		return nil, fmt.Errorf("client: unexpected response %T", resp)
	}
	return sr, nil
}

// WireItems converts server upload items to their wire form, each blob
// synthesized deterministically from the item's identity (see
// wireItems). Exported for the cluster router, which splits a batch by
// shard and needs the exact blobs — and therefore block hashes — a
// direct client upload of the same items would produce.
func WireItems(items []server.UploadItem) []wire.UploadBatchItem {
	return wireItems(items)
}

// ItemKey folds an item's identity into a stable 64-bit key: the same
// descriptor/metadata hash that seeds blob synthesis. The cluster
// router shards on it, so an item lands on the same shard no matter
// which router (or replay) routes it.
func ItemKey(it *server.UploadItem) uint64 {
	return itemSeed(it)
}
