package client

import (
	"testing"
	"time"

	"bees/internal/baseline"
	"bees/internal/core"
	"bees/internal/dataset"
	"bees/internal/energy"
	"bees/internal/netsim"
	"bees/internal/server"
)

// TestPipelineOverTCP runs the complete BEES pipeline against a real TCP
// server through the RemoteServer adapter and checks the outcome matches
// an in-process run of the same workload.
func TestPipelineOverTCP(t *testing.T) {
	srv, addr := startServer(t)
	c := dial(t, addr)
	remote := NewRemoteServer(c)

	newDev := func() *core.Device {
		return core.NewDevice(nil, netsim.NewLink(256000), energy.DefaultModel())
	}
	scheme := baseline.NewBEES()

	d := dataset.NewDisasterBatch(700, 20, 4, 0)
	rRemote := scheme.ProcessBatch(newDev(), remote, d.Batch)
	if err := remote.Err(); err != nil {
		t.Fatalf("transport errors: %v", err)
	}

	dLocal := dataset.NewDisasterBatch(700, 20, 4, 0)
	rLocal := scheme.ProcessBatch(newDev(), server.NewDefault(), dLocal.Batch)

	if rRemote.Uploaded != rLocal.Uploaded ||
		rRemote.CrossEliminated != rLocal.CrossEliminated ||
		rRemote.InBatchEliminated != rLocal.InBatchEliminated {
		t.Fatalf("remote run diverged from local: remote=%+v local=%+v", rRemote, rLocal)
	}
	st := srv.Stats()
	if st.Images != rRemote.Uploaded {
		t.Fatalf("server stored %d, report says %d", st.Images, rRemote.Uploaded)
	}
	// The blob bytes crossing the wire are the compressed image sizes.
	if st.BytesReceived != int64(rRemote.ImageBytes) {
		t.Fatalf("server received %d bytes, report says %d", st.BytesReceived, rRemote.ImageBytes)
	}
}

// TestSecondBatchCrossBatchOverTCP checks that a replayed batch is
// eliminated as cross-batch redundancy by the remote index.
func TestSecondBatchCrossBatchOverTCP(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	remote := NewRemoteServer(c)
	dev := core.NewDevice(nil, netsim.NewLink(256000), energy.DefaultModel())
	scheme := baseline.NewBEES()

	first := dataset.NewDisasterBatch(701, 12, 0, 0)
	r1 := scheme.ProcessBatch(dev, remote, first.Batch)
	if r1.Uploaded == 0 {
		t.Fatal("first batch uploaded nothing")
	}
	again := dataset.NewDisasterBatch(701, 12, 0, 0)
	r2 := scheme.ProcessBatch(dev, remote, again.Batch)
	if r2.CrossEliminated < 10 {
		t.Fatalf("replayed batch only %d/12 eliminated", r2.CrossEliminated)
	}
	if err := remote.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestRemoteServerDegradesOnFailure verifies the disaster-mode behaviour:
// a dead connection yields similarity 0 and upload ID -1 instead of a
// crash.
func TestRemoteServerDegradesOnFailure(t *testing.T) {
	srv := server.NewDefault()
	tcp := server.NewTCP(srv)
	bound, err := tcp.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(bound.String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	tcp.Close()
	remote := NewRemoteServer(c)
	sets := testSets(t, 1)
	if sim := remote.QueryMax(sets[0]); sim != 0 {
		t.Fatalf("failed query returned %v", sim)
	}
	if id := remote.Upload(sets[0], server.UploadMeta{Bytes: 10}); id != -1 {
		t.Fatalf("failed upload returned %v", id)
	}
	if remote.Err() == nil {
		t.Fatal("Err should report the failure")
	}
}
