package client

import (
	"reflect"
	"testing"

	"bees/internal/features"
	"bees/internal/server"
	"bees/internal/telemetry"
)

// TestBlockPathMatchesWholeImagePath is the differential proof behind
// the transparent fallback: the same seeded chunk uploaded once through
// the delta path (query → put → commit) and once through the legacy
// whole-image batch frame must leave two servers with identical
// accounting, identical upload metadata, and identical index answers.
// If these diverge, negotiation isn't a transport detail anymore — it
// changes what the server believes it received.
func TestBlockPathMatchesWholeImagePath(t *testing.T) {
	if testing.Short() {
		t.Skip("renders feature sets")
	}
	items := blockChaosItems(t)
	sets := make([]*features.BinarySet, len(items))
	for i, it := range items {
		sets[i] = it.Set
	}

	type result struct {
		stats      server.Stats
		metas      []server.UploadMeta
		sims       []float64
		blocksSent int64
	}
	upload := func(disableBlocks bool, seed int64) result {
		t.Helper()
		srv, addr := startServer(t)
		tel := telemetry.NewRegistry()
		opts := blockChaosOptions(seed, tel, nil)
		opts.DisableBlocks = disableBlocks
		c, err := DialOptions(addr, opts)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		remote := NewRemoteServer(c)
		if _, err := remote.UploadItems(c.NewNonce(), items); err != nil {
			t.Fatalf("upload (disableBlocks=%v): %v", disableBlocks, err)
		}
		return result{
			stats:      srv.Stats(),
			metas:      srv.UploadedMetas(),
			sims:       srv.QueryMaxBatch(sets),
			blocksSent: tel.Snapshot().Counters["client.blocks.sent"],
		}
	}

	blocks := upload(false, 11)
	legacy := upload(true, 12)

	if blocks.blocksSent == 0 {
		t.Fatal("block path moved no blocks — the differential compares nothing")
	}
	if legacy.blocksSent != 0 {
		t.Fatalf("legacy path sent %d blocks with negotiation disabled", legacy.blocksSent)
	}
	if blocks.stats != legacy.stats {
		t.Fatalf("server accounting diverged: blocks=%+v legacy=%+v", blocks.stats, legacy.stats)
	}
	if !reflect.DeepEqual(blocks.metas, legacy.metas) {
		t.Fatalf("uploaded metadata diverged:\nblocks: %+v\nlegacy: %+v", blocks.metas, legacy.metas)
	}
	if !reflect.DeepEqual(blocks.sims, legacy.sims) {
		t.Fatalf("index answers diverged: blocks=%v legacy=%v", blocks.sims, legacy.sims)
	}
	for _, sim := range blocks.sims {
		if sim != 1 {
			t.Fatalf("re-querying an uploaded image's own set should be an exact hit, got %v", blocks.sims)
		}
	}
}
