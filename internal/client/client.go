// Package client implements the network client of the BEES prototype: a
// thin RPC wrapper over the wire protocol used by cmd/beesctl and by the
// prototype integration tests. Simulations bypass it and call the server
// in-process.
package client

import (
	"fmt"
	"net"
	"sync"
	"time"

	"bees/internal/features"
	"bees/internal/wire"
)

// Client is a connection to a beesd server. Methods are safe for
// concurrent use; requests serialize over the single connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
}

// Dial connects to a beesd server.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	return &Client{conn: conn}, nil
}

// roundTrip writes one frame and reads one response frame.
func (c *Client) roundTrip(req any) (any, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := wire.WriteFrame(c.conn, req); err != nil {
		return nil, err
	}
	resp, err := wire.ReadFrame(c.conn)
	if err != nil {
		return nil, err
	}
	if e, ok := resp.(*wire.ErrorResponse); ok {
		return nil, fmt.Errorf("client: server error: %s", e.Message)
	}
	return resp, nil
}

// QueryMax returns the server's maximum stored similarity for each
// feature set, in order.
func (c *Client) QueryMax(sets []*features.BinarySet) ([]float64, error) {
	resp, err := c.roundTrip(&wire.QueryRequest{Sets: sets})
	if err != nil {
		return nil, err
	}
	qr, ok := resp.(*wire.QueryResponse)
	if !ok {
		return nil, fmt.Errorf("client: unexpected response %T", resp)
	}
	if len(qr.MaxSims) != len(sets) {
		return nil, fmt.Errorf("client: got %d similarities for %d sets", len(qr.MaxSims), len(sets))
	}
	return qr.MaxSims, nil
}

// Upload sends one image (features + payload) and returns the assigned
// server-side image ID.
func (c *Client) Upload(set *features.BinarySet, groupID int64, lat, lon float64, blob []byte) (int64, error) {
	resp, err := c.roundTrip(&wire.UploadRequest{
		Set:     set,
		GroupID: groupID,
		Lat:     lat,
		Lon:     lon,
		Blob:    blob,
	})
	if err != nil {
		return 0, err
	}
	ur, ok := resp.(*wire.UploadResponse)
	if !ok {
		return 0, fmt.Errorf("client: unexpected response %T", resp)
	}
	return ur.ID, nil
}

// Stats fetches the server's upload counters.
func (c *Client) Stats() (images, bytes int64, err error) {
	resp, err := c.roundTrip(&wire.StatsRequest{})
	if err != nil {
		return 0, 0, err
	}
	sr, ok := resp.(*wire.StatsResponse)
	if !ok {
		return 0, 0, fmt.Errorf("client: unexpected response %T", resp)
	}
	return sr.Images, sr.BytesReceived, nil
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}
