// Package client implements the network client of the BEES prototype: a
// thin RPC wrapper over the wire protocol used by cmd/beesctl and by the
// prototype integration tests. Simulations bypass it and call the server
// in-process.
//
// The client is built for the paper's disaster network — a shaped
// 0–512 Kbps link where stalls, resets and partial writes are routine.
// Every request runs under a deadline, failed requests are retried with
// exponential backoff and jitter over a freshly dialed connection, and
// uploads carry a nonce so a retry can never be double-counted by the
// server. Close always returns promptly, even while a request is blocked
// on an unresponsive peer.
package client

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"bees/internal/blockstore"
	"bees/internal/features"
	"bees/internal/telemetry"
	"bees/internal/wire"
)

// ErrClosed is returned by requests issued on (or interrupted by) a
// closed client.
var ErrClosed = errors.New("client: closed")

// DialFunc opens a transport connection. Tests substitute fault-injecting
// dialers (netsim.FaultyDialer) to exercise the retry machinery.
type DialFunc func(addr string, timeout time.Duration) (net.Conn, error)

// Options tunes the client's fault-tolerance behaviour. The zero value
// selects the defaults documented per field.
type Options struct {
	// DialTimeout bounds each connection attempt. Default 5s.
	DialTimeout time.Duration
	// RequestTimeout is the per-attempt deadline covering the request
	// write and the response read. Default 10s.
	RequestTimeout time.Duration
	// MaxRetries is how many times a failed request is retried (on a
	// fresh connection) before the error is surfaced, so a request makes
	// at most MaxRetries+1 attempts. Negative disables retries. Default 3.
	MaxRetries int
	// BackoffBase is the sleep before the first retry; each further retry
	// doubles it, capped at BackoffMax, with ±50% jitter. Defaults 50ms
	// and 2s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// UploadWindow caps how many images one batched-upload frame carries;
	// UploadBatch splits larger batches into successive frames so a single
	// frame never approaches wire.MaxFrameBytes. Default 32.
	UploadWindow int
	// BreakerThreshold is how many consecutive transport failures open
	// the circuit breaker; while open, the next attempt is *held* (not
	// rejected) until a cooldown passes, so a dead link is probed gently
	// instead of hammered. Default 8 — above the per-request retry
	// budget, so the breaker only trips across requests, never within a
	// healthy one.
	BreakerThreshold int
	// BreakerCooldown is the first open-state hold; each failed probe
	// doubles it up to BreakerCooldownMax. Defaults 50ms and 250ms.
	BreakerCooldown    time.Duration
	BreakerCooldownMax time.Duration
	// MaxBusyWaits caps how many consecutive BusyResponse holds one
	// request tolerates before surfacing an error; busy holds do not
	// consume the retry budget. Default 8.
	MaxBusyWaits int
	// Seed fixes the jitter and nonce RNG for reproducible tests; 0 draws
	// a random seed.
	Seed int64
	// Dial replaces net.DialTimeout, e.g. with a fault-injecting link.
	Dial DialFunc
	// LazyDial skips the eager connection in DialOptions: the client is
	// returned immediately and the first request dials (with the usual
	// retry machinery). A device that spools uploads to an outbox wants
	// this — it must start even while the server is unreachable.
	LazyDial bool
	// Telemetry is the registry the client's transport counters
	// ("client.dials", "client.retries", "client.requests") land in —
	// share one registry across the app to scrape everything at once.
	// Nil gives the client a private registry, which Metrics reads, so
	// the accessor works either way.
	Telemetry *telemetry.Registry
	// BlockSize is the content-addressed block granularity for delta
	// uploads; it must match what resumed transfers used or their blocks
	// won't be found. 0 selects blockstore.DefaultBlockSize (128 KiB).
	BlockSize int
	// BlockPutBytes caps the approximate payload of one BlockPut frame;
	// smaller frames ack more often, which is what makes a severed
	// transfer resumable mid-image. Default 4 MiB.
	BlockPutBytes int
	// DisableBlocks skips Hello negotiation entirely and forces the
	// whole-image upload path, as if the server never advertised the
	// feature.
	DisableBlocks bool
}

func (o Options) withDefaults() Options {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 10 * time.Second
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 50 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 2 * time.Second
	}
	if o.UploadWindow <= 0 {
		o.UploadWindow = 32
	}
	if o.BreakerThreshold <= 0 {
		o.BreakerThreshold = 8
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 50 * time.Millisecond
	}
	if o.BreakerCooldownMax <= 0 {
		o.BreakerCooldownMax = 250 * time.Millisecond
	}
	if o.MaxBusyWaits <= 0 {
		o.MaxBusyWaits = 8
	}
	if o.BlockSize <= 0 {
		o.BlockSize = blockstore.DefaultBlockSize
	}
	if o.BlockPutBytes <= 0 {
		o.BlockPutBytes = 4 << 20
	}
	if o.Seed == 0 {
		o.Seed = rand.Int63()
	}
	if o.Dial == nil {
		o.Dial = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	if o.Telemetry == nil {
		o.Telemetry = telemetry.NewRegistry()
	}
	return o
}

// DefaultOptions returns the default fault-tolerance settings, with
// MaxRetries as documented on Options.
func DefaultOptions() Options {
	o := Options{MaxRetries: 3}
	return o.withDefaults()
}

// Metrics counts the client's fault-tolerance activity. It is a snapshot
// of the telemetry counters "client.retries" and "client.dials" in the
// client's registry (Options.Telemetry, or the private one the client
// creates when none is given).
type Metrics struct {
	// Retries is how many request attempts were repeated after a failure.
	Retries int64
	// Redials is how many connections were established after the first.
	Redials int64
	// BreakerState is the circuit breaker's current state (Breaker*
	// constants: 0 closed, 1 open, 2 half-open).
	BreakerState int
	// BreakerTrips counts closed→open transitions.
	BreakerTrips int64
	// BusyHolds counts attempts the server answered with BusyResponse;
	// each held the request for the server's retry-after hint without
	// consuming retry budget.
	BusyHolds int64
}

// Client is a connection to a beesd server. Methods are safe for
// concurrent use; requests serialize over the single connection.
type Client struct {
	addr string
	opts Options

	// reqMu serializes round trips (one request/response in flight).
	reqMu sync.Mutex
	rng   *rand.Rand // jitter + nonces; guarded by reqMu

	// stateMu guards conn/closed only; it is never held across I/O, so
	// Close can always acquire it and unblock a stuck reader.
	stateMu sync.Mutex
	conn    net.Conn
	closed  bool
	// closeCh is closed by Close to cut backoff sleeps short.
	closeCh chan struct{}

	// Transport counters live in the telemetry registry; the pointers are
	// resolved once at construction so the hot path never takes the
	// registry lock.
	dials     *telemetry.Counter
	retries   *telemetry.Counter
	requests  *telemetry.Counter
	busyHolds *telemetry.Counter

	// breaker paces attempts across requests: consecutive transport
	// failures open it, and server BusyResponses park the next attempt
	// through it.
	breaker *breaker

	// featMu guards the cached Hello negotiation result. A successful
	// exchange is cached for the client's lifetime; a transport failure
	// leaves it unset so the next upload re-probes.
	featMu         sync.Mutex
	featNegotiated bool
	serverFeatures uint64

	// Block-transfer counters (see blocks.go), resolved once like the
	// transport counters above.
	blocksQueried      *telemetry.Counter
	blocksSent         *telemetry.Counter
	blocksSentBytes    *telemetry.Counter
	blocksSkipped      *telemetry.Counter
	blocksSkippedBytes *telemetry.Counter
}

// Dial connects to a beesd server with default fault tolerance; timeout
// bounds the initial connection attempt.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	opts := Options{MaxRetries: 3}
	opts.DialTimeout = timeout
	return DialOptions(addr, opts)
}

// DialOptions connects to a beesd server with explicit fault-tolerance
// settings. The initial connection is established eagerly so an
// unreachable server fails fast.
func DialOptions(addr string, opts Options) (*Client, error) {
	opts = opts.withDefaults()
	c := &Client{
		addr:      addr,
		opts:      opts,
		rng:       rand.New(rand.NewSource(opts.Seed)),
		closeCh:   make(chan struct{}),
		dials:     opts.Telemetry.Counter("client.dials"),
		retries:   opts.Telemetry.Counter("client.retries"),
		requests:  opts.Telemetry.Counter("client.requests"),
		busyHolds: opts.Telemetry.Counter("client.busy_holds"),
		breaker: newBreaker(opts.BreakerThreshold, opts.BreakerCooldown,
			opts.BreakerCooldownMax, opts.Seed+1, opts.Telemetry),
		blocksQueried:      opts.Telemetry.Counter("client.blocks.queried"),
		blocksSent:         opts.Telemetry.Counter("client.blocks.sent"),
		blocksSentBytes:    opts.Telemetry.Counter("client.blocks.sent_bytes"),
		blocksSkipped:      opts.Telemetry.Counter("client.blocks.skipped"),
		blocksSkippedBytes: opts.Telemetry.Counter("client.blocks.skipped_bytes"),
	}
	if opts.LazyDial {
		return c, nil
	}
	conn, err := c.dial()
	if err != nil {
		return nil, err
	}
	c.stateMu.Lock()
	c.conn = conn
	c.stateMu.Unlock()
	return c, nil
}

func (c *Client) dial() (net.Conn, error) {
	conn, err := c.opts.Dial(c.addr, c.opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", c.addr, err)
	}
	c.dials.Inc()
	return conn, nil
}

// Metrics returns a snapshot of the retry/redial/breaker counters.
func (c *Client) Metrics() Metrics {
	return Metrics{
		Retries:      c.retries.Value(),
		Redials:      max64(c.dials.Value()-1, 0),
		BreakerState: c.breaker.State(),
		BreakerTrips: c.opts.Telemetry.Counter("client.breaker.trips").Value(),
		BusyHolds:    c.busyHolds.Value(),
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// serverError marks a failure the server itself reported: the transport
// worked, so retrying the same request is pointless.
type serverError struct{ msg string }

func (e *serverError) Error() string { return "client: server error: " + e.msg }

// ensureConn returns the live connection, dialing a fresh one if the
// previous attempt tore it down.
func (c *Client) ensureConn() (net.Conn, error) {
	c.stateMu.Lock()
	if c.closed {
		c.stateMu.Unlock()
		return nil, ErrClosed
	}
	if conn := c.conn; conn != nil {
		c.stateMu.Unlock()
		return conn, nil
	}
	c.stateMu.Unlock()

	conn, err := c.dial()
	if err != nil {
		return nil, err
	}
	c.stateMu.Lock()
	if c.closed {
		c.stateMu.Unlock()
		conn.Close()
		return nil, ErrClosed
	}
	c.conn = conn
	c.stateMu.Unlock()
	return conn, nil
}

// dropConn discards a connection after a failed attempt so the next
// attempt starts from a clean stream (a partial write or desynchronized
// read makes the old one unusable).
func (c *Client) dropConn(conn net.Conn) {
	conn.Close()
	c.stateMu.Lock()
	if c.conn == conn {
		c.conn = nil
	}
	c.stateMu.Unlock()
}

// backoff sleeps before retry number n (1-based) or returns ErrClosed if
// the client is closed first.
func (c *Client) backoff(n int) error {
	d := c.opts.BackoffBase << (n - 1)
	if d > c.opts.BackoffMax || d <= 0 {
		d = c.opts.BackoffMax
	}
	// ±50% jitter keeps a fleet of disaster phones from retrying in sync.
	d = d/2 + time.Duration(c.rng.Int63n(int64(d)))
	select {
	case <-time.After(d):
		return nil
	case <-c.closeCh:
		return ErrClosed
	}
}

// roundTrip writes one frame and reads one response frame, retrying over
// fresh connections until the retry budget is spent. Two kinds of pause
// gate the attempts without consuming that budget: the circuit breaker's
// open-state hold (the link has been failing across requests) and the
// server's BusyResponse retry-after hint (the transport works, the
// server is shedding load).
func (c *Client) roundTrip(req any) (any, error) {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	c.requests.Inc()
	var lastErr error
	attempt, busyWaits := 0, 0
	for {
		// Breaker gate: holds (possibly repeatedly) until the cooldown or
		// busy hint expires. In open state the attempt that passes is the
		// half-open probe — reqMu makes it naturally single-flight.
		if err := c.breaker.wait(c.closeCh); err != nil {
			return nil, err
		}
		conn, err := c.ensureConn()
		if err == nil {
			var resp any
			resp, err = c.attempt(conn, req)
			if err == nil {
				if busy, ok := resp.(*wire.BusyResponse); ok {
					// The server shed this request without applying it. The
					// transport worked (the probe succeeded), so pace via the
					// hint and resend the identical frame — same nonce — with
					// the retry budget untouched.
					c.breaker.onSuccess()
					c.busyHolds.Inc()
					busyWaits++
					if busyWaits > c.opts.MaxBusyWaits {
						return nil, fmt.Errorf("client: server busy after %d holds (retry-after %dms)",
							busyWaits, busy.RetryAfterMs)
					}
					c.breaker.hold(time.Duration(busy.RetryAfterMs) * time.Millisecond)
					continue
				}
				c.breaker.onSuccess()
				return resp, nil
			}
			var se *serverError
			if errors.As(err, &se) {
				// The exchange succeeded; the server rejected the request.
				c.breaker.onSuccess()
				return nil, err
			}
			if errors.Is(err, wire.ErrUnencodable) {
				// Nothing hit the wire; the connection is still good and a
				// retry would fail identically.
				return nil, err
			}
			c.dropConn(conn)
		}
		if errors.Is(err, ErrClosed) || c.isClosed() {
			return nil, ErrClosed
		}
		c.breaker.onFailure()
		lastErr = err
		attempt++
		if attempt > c.opts.MaxRetries {
			return nil, fmt.Errorf("client: request failed after %d attempts: %w",
				c.opts.MaxRetries+1, lastErr)
		}
		if err := c.backoff(attempt); err != nil {
			return nil, err
		}
		c.retries.Inc()
	}
}

// attempt performs one request/response exchange under the per-request
// deadline.
func (c *Client) attempt(conn net.Conn, req any) (any, error) {
	if err := conn.SetDeadline(time.Now().Add(c.opts.RequestTimeout)); err != nil {
		return nil, fmt.Errorf("client: set deadline: %w", err)
	}
	if err := wire.WriteFrame(conn, req); err != nil {
		return nil, err
	}
	resp, err := wire.ReadFrame(conn)
	if err != nil {
		return nil, err
	}
	if e, ok := resp.(*wire.ErrorResponse); ok {
		return nil, &serverError{msg: e.Message}
	}
	return resp, nil
}

func (c *Client) isClosed() bool {
	c.stateMu.Lock()
	defer c.stateMu.Unlock()
	return c.closed
}

// QueryMax returns the server's maximum stored similarity for each
// feature set, in order.
func (c *Client) QueryMax(sets []*features.BinarySet) ([]float64, error) {
	resp, err := c.roundTrip(&wire.QueryRequest{Sets: sets})
	if err != nil {
		return nil, err
	}
	qr, ok := resp.(*wire.QueryResponse)
	if !ok {
		return nil, fmt.Errorf("client: unexpected response %T", resp)
	}
	if len(qr.MaxSims) != len(sets) {
		return nil, fmt.Errorf("client: got %d similarities for %d sets", len(qr.MaxSims), len(sets))
	}
	return qr.MaxSims, nil
}

// Upload sends one image (features + payload) and returns the assigned
// server-side image ID. The request carries a fresh nonce, reused across
// retries, so a response lost to the network cannot make the server
// store (or count) the image twice.
func (c *Client) Upload(set *features.BinarySet, groupID int64, lat, lon float64, blob []byte) (int64, error) {
	resp, err := c.roundTrip(&wire.UploadRequest{
		Nonce:   c.newNonce(),
		Set:     set,
		GroupID: groupID,
		Lat:     lat,
		Lon:     lon,
		Blob:    blob,
	})
	if err != nil {
		return 0, err
	}
	ur, ok := resp.(*wire.UploadResponse)
	if !ok {
		return 0, fmt.Errorf("client: unexpected response %T", resp)
	}
	return ur.ID, nil
}

// maxBatchFrameBytes caps the approximate payload of one batched-upload
// frame so even Direct-upload-sized blobs stay far below the protocol's
// wire.MaxFrameBytes limit.
const maxBatchFrameBytes = 16 << 20

// UploadBatch sends a batch of images in as few round trips as the frame
// budget allows: up to Options.UploadWindow images (and roughly
// maxBatchFrameBytes of payload) per frame. Each frame carries one fresh
// nonce covering all its items, so a retried frame can never store or
// count any of them twice. It returns the server-assigned IDs in item
// order; on error the IDs of the chunks that did complete are returned
// alongside it.
func (c *Client) UploadBatch(items []wire.UploadBatchItem) ([]int64, error) {
	ids := make([]int64, 0, len(items))
	for start := 0; start < len(items); {
		end, bytes := start, 0
		for end < len(items) && end-start < c.opts.UploadWindow {
			sz := len(items[end].Blob)
			if set := items[end].Set; set != nil {
				sz += len(set.Descriptors) * 32
			}
			if end > start && bytes+sz > maxBatchFrameBytes {
				break
			}
			bytes += sz
			end++
		}
		chunk, err := c.uploadBatchChunk(items[start:end])
		if err != nil {
			return ids, err
		}
		ids = append(ids, chunk...)
		start = end
	}
	return ids, nil
}

func (c *Client) uploadBatchChunk(items []wire.UploadBatchItem) ([]int64, error) {
	return c.UploadBatchNonce(c.newNonce(), items)
}

// UploadBatchNonce sends items in one batched-upload frame carrying the
// caller's nonce rather than a fresh one. This is the outbox replay
// path: re-sending a chunk under its original nonce makes the replay
// idempotent — if the chunk actually landed before the partition ate the
// response, the server's dedup window returns the original IDs instead
// of storing the images twice. Unlike UploadBatch, the items are NOT
// split across frames (a chunk shares one nonce, and the pipeline
// already sizes chunks to its upload window).
func (c *Client) UploadBatchNonce(nonce uint64, items []wire.UploadBatchItem) ([]int64, error) {
	resp, err := c.roundTrip(&wire.UploadBatchRequest{Nonce: nonce, Items: items})
	if err != nil {
		return nil, err
	}
	br, ok := resp.(*wire.UploadBatchResponse)
	if !ok {
		return nil, fmt.Errorf("client: unexpected response %T", resp)
	}
	if len(br.IDs) != len(items) {
		return nil, fmt.Errorf("client: got %d ids for %d uploaded items", len(br.IDs), len(items))
	}
	return br.IDs, nil
}

// NewNonce draws a nonzero upload nonce for a caller that manages its
// own replay (core.Pipeline stamps outbox chunks with it before the
// first attempt, so replays dedup against that attempt).
func (c *Client) NewNonce() uint64 { return c.newNonce() }

// newNonce draws a nonzero upload nonce. Called before roundTrip takes
// reqMu, so it synchronizes on it explicitly.
func (c *Client) newNonce() uint64 {
	c.reqMu.Lock()
	defer c.reqMu.Unlock()
	for {
		if n := c.rng.Uint64(); n != 0 {
			return n
		}
	}
}

// PushTelemetry uploads a telemetry snapshot (JSON-encoded on the wire)
// so the server's /debug endpoint can expose this client's pipeline and
// transport metrics. beesctl pushes once per run; a retried push merges
// counters twice, which only overstates client activity.
func (c *Client) PushTelemetry(s telemetry.Snapshot) error {
	body, err := json.Marshal(s)
	if err != nil {
		return fmt.Errorf("client: encode telemetry: %w", err)
	}
	resp, err := c.roundTrip(&wire.TelemetryPush{Snapshot: body})
	if err != nil {
		return err
	}
	if _, ok := resp.(*wire.TelemetryAck); !ok {
		return fmt.Errorf("client: unexpected response %T", resp)
	}
	return nil
}

// Stats fetches the server's upload counters.
func (c *Client) Stats() (images, bytes int64, err error) {
	resp, err := c.roundTrip(&wire.StatsRequest{})
	if err != nil {
		return 0, 0, err
	}
	sr, ok := resp.(*wire.StatsResponse)
	if !ok {
		return 0, 0, fmt.Errorf("client: unexpected response %T", resp)
	}
	return sr.Images, sr.BytesReceived, nil
}

// Close closes the connection. It never waits for an in-flight request:
// closing the conn unblocks any reader stuck on a dead peer, and pending
// backoff sleeps are cut short.
func (c *Client) Close() error {
	c.stateMu.Lock()
	if c.closed {
		c.stateMu.Unlock()
		return nil
	}
	c.closed = true
	conn := c.conn
	c.conn = nil
	close(c.closeCh)
	c.stateMu.Unlock()
	if conn != nil {
		return conn.Close()
	}
	return nil
}
