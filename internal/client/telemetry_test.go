package client

import (
	"testing"
	"time"

	"bees/internal/server"
	"bees/internal/telemetry"
)

// TestMetricsBackedByRegistry checks the Metrics accessor survived the
// migration onto the telemetry registry: the counters it reports are the
// registry's, whether the registry is private or caller-supplied.
func TestMetricsBackedByRegistry(t *testing.T) {
	_, addr := startServer(t)
	reg := telemetry.NewRegistry()
	c, err := DialOptions(addr, Options{Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, _, err := c.Stats(); err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if got := s.Counters["client.dials"]; got != 1 {
		t.Fatalf("client.dials = %d, want 1", got)
	}
	if got := s.Counters["client.requests"]; got != 1 {
		t.Fatalf("client.requests = %d, want 1", got)
	}
	m := c.Metrics()
	if m.Retries != s.Counters["client.retries"] || m.Redials != s.Counters["client.dials"]-1 {
		t.Fatalf("Metrics %+v disagrees with registry %v", m, s.Counters)
	}
}

// TestMetricsDefaultPrivateRegistry checks a client without an explicit
// registry still reports metrics (the pre-telemetry behaviour).
func TestMetricsDefaultPrivateRegistry(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	if _, _, err := c.Stats(); err != nil {
		t.Fatal(err)
	}
	m := c.Metrics()
	if m.Retries != 0 || m.Redials != 0 {
		t.Fatalf("fresh client metrics = %+v, want zeros", m)
	}
}

// TestPushTelemetryRoundTrip pushes a snapshot and checks the server
// acknowledged and recorded it.
func TestPushTelemetryRoundTrip(t *testing.T) {
	srv := server.NewDefault()
	serverReg := telemetry.NewRegistry()
	tcp := server.NewTCPConfig(srv, server.TCPConfig{Telemetry: serverReg})
	addr, err := tcp.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tcp.Close() })

	clientReg := telemetry.NewRegistry()
	clientReg.SetClock(telemetry.StepClock(time.Unix(0, 0), time.Millisecond))
	clientReg.Counter("pipeline.batches").Inc()
	c, err := DialOptions(addr.String(), Options{Telemetry: clientReg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.PushTelemetry(clientReg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	got := tcp.ClientSnapshot()
	if got.Counters["pipeline.batches"] != 1 {
		t.Fatalf("server did not record pushed snapshot: %+v", got.Counters)
	}
	// The push itself was counted as a client request in the same
	// registry that was pushed (snapshot was taken before the push).
	if v := clientReg.Counter("client.requests").Value(); v != 1 {
		t.Fatalf("client.requests = %d, want 1", v)
	}
}
