package client

import (
	"encoding/binary"
	"net"
	"sync"
	"testing"
	"time"

	"bees/internal/netsim"
	"bees/internal/server"
	"bees/internal/telemetry"
	"bees/internal/wire"
)

// blockPutSever counts outgoing wire frames by parsing the 5-byte
// headers flowing through Write, and severs a netsim.Partition the
// moment the Nth MsgBlockPut frame starts — before any of its bytes
// reach the server. Round trips are strictly sequential on a client
// connection, so everything before the Nth put (Hello, BlockQuery, the
// first N−1 puts) has been acked by the time the cut lands: the test
// knows exactly which blocks the server holds.
type blockPutSever struct {
	part  *netsim.Partition
	limit int

	mu     sync.Mutex
	puts   int // MsgBlockPut frames seen (completed headers)
	skip   int // payload bytes still to pass through untouched
	hdr    [5]byte
	hdrLen int
	done   bool // tripped once; later writes (post-heal) pass through
}

// observe feeds outgoing bytes through the frame parser and reports
// whether the write must be cut instead of forwarded. It trips exactly
// once: after the cut, fresh connections write unobserved so the healed
// replay can proceed.
func (s *blockPutSever) observe(b []byte) (sever bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return false
	}
	for len(b) > 0 {
		if s.skip > 0 {
			n := s.skip
			if n > len(b) {
				n = len(b)
			}
			s.skip -= n
			b = b[n:]
			continue
		}
		n := copy(s.hdr[s.hdrLen:], b)
		s.hdrLen += n
		b = b[n:]
		if s.hdrLen < len(s.hdr) {
			return false
		}
		s.hdrLen = 0
		s.skip = int(binary.LittleEndian.Uint32(s.hdr[:4]))
		if wire.MsgType(s.hdr[4]) == wire.MsgBlockPut {
			s.puts++
			if s.puts >= s.limit {
				s.done = true
				return true
			}
		}
	}
	return false
}

// Dialer returns a partition dialer whose connections sever the link on
// the Nth block-put frame.
func (s *blockPutSever) Dialer() func(addr string, timeout time.Duration) (net.Conn, error) {
	return s.part.Dialer(func(addr string, timeout time.Duration) (net.Conn, error) {
		conn, err := net.DialTimeout("tcp", addr, timeout)
		if err != nil {
			return nil, err
		}
		return &severConn{Conn: conn, s: s}, nil
	})
}

type severConn struct {
	net.Conn
	s *blockPutSever
}

func (c *severConn) Write(b []byte) (int, error) {
	if c.s.observe(b) {
		// Sever with the frame unwritten: the server never sees any byte
		// of the fatal put, exactly like a mid-flight partition.
		c.s.part.Sever()
		return 0, netsim.ErrPartitioned
	}
	return c.Conn.Write(b)
}

// blockChaosItems builds a fixed two-image chunk: 7 blocks + 3 blocks
// at the 1 KiB test block size (the last block of the first image is a
// 512-byte tail, so partial trailing blocks are exercised too).
func blockChaosItems(t *testing.T) []server.UploadItem {
	t.Helper()
	sets := testSets(t, 2)
	return []server.UploadItem{
		{Set: sets[0], Meta: server.UploadMeta{GroupID: 1, Lat: 31.20, Lon: 121.40, Bytes: 6*1024 + 512}},
		{Set: sets[1], Meta: server.UploadMeta{GroupID: 2, Lat: 31.21, Lon: 121.41, Bytes: 3 * 1024}},
	}
}

func blockChaosOptions(seed int64, tel *telemetry.Registry, dial func(string, time.Duration) (net.Conn, error)) Options {
	return Options{
		DialTimeout:        time.Second,
		RequestTimeout:     time.Second,
		MaxRetries:         2,
		BackoffBase:        time.Millisecond,
		BackoffMax:         5 * time.Millisecond,
		BreakerCooldown:    2 * time.Millisecond,
		BreakerCooldownMax: 10 * time.Millisecond,
		Seed:               seed, // distinct per client: nonces are drawn from this
		Telemetry:          tel,
		Dial:               dial,
		BlockSize:          1024,
		BlockPutBytes:      1, // one block per put frame: the cut point is block-precise
	}
}

type blockCounters struct{ queried, sent, sentBytes, skipped, skippedBytes int64 }

func readBlockCounters(tel *telemetry.Registry) blockCounters {
	c := tel.Snapshot().Counters
	return blockCounters{
		queried:      c["client.blocks.queried"],
		sent:         c["client.blocks.sent"],
		sentBytes:    c["client.blocks.sent_bytes"],
		skipped:      c["client.blocks.skipped"],
		skippedBytes: c["client.blocks.skipped_bytes"],
	}
}

// TestChaosBlockResume is the delta-upload proof: a partition cuts the
// link mid-image — after the 4th of 10 block puts — and the healed
// replay of the same chunk (same nonce, same items) must resend ONLY
// the blocks the server never acked, commit, and leave the server's
// accounting byte-identical to a run that never saw a fault. A second
// replay of the commit dedups by nonce, and a second client uploading
// the identical images moves zero payload blocks.
func TestChaosBlockResume(t *testing.T) {
	if testing.Short() {
		t.Skip("renders feature sets and runs a TCP partition dance")
	}
	items := blockChaosItems(t)
	const (
		totalBlocks = 7 + 3
		totalBytes  = 6*1024 + 512 + 3*1024
		severAt     = 4 // the 4th put dies ⇒ exactly 3 blocks land
	)

	// --- Baseline: same chunk over a healthy link. ----------------------
	cleanSrv, cleanAddr := startServer(t)
	cleanTel := telemetry.NewRegistry()
	cleanClient, err := DialOptions(cleanAddr, blockChaosOptions(7, cleanTel, nil))
	if err != nil {
		t.Fatal(err)
	}
	cleanRemote := NewRemoteServer(cleanClient)
	if _, err := cleanRemote.UploadItems(cleanClient.NewNonce(), items); err != nil {
		t.Fatalf("clean upload: %v", err)
	}
	cleanClient.Close()
	wantStats := cleanSrv.Stats()
	wantBlocks := cleanSrv.Blocks().Stats()
	if wantStats.Images != len(items) || wantBlocks.Blocks != totalBlocks {
		t.Fatalf("clean run stored %d images / %d blocks, want %d / %d",
			wantStats.Images, wantBlocks.Blocks, len(items), totalBlocks)
	}

	// --- The system under test: sever on the 4th block put. -------------
	srv, addr := startServer(t)
	sever := &blockPutSever{part: netsim.NewPartition(), limit: severAt}
	tel := telemetry.NewRegistry()
	c, err := DialOptions(addr, blockChaosOptions(8, tel, sever.Dialer()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	remote := NewRemoteServer(c)

	nonce := c.NewNonce()
	if _, err := remote.UploadItems(nonce, items); err == nil {
		t.Fatal("upload through a mid-image partition succeeded")
	}
	if images := srv.Stats().Images; images != 0 {
		t.Fatalf("server committed %d images from a half-delivered chunk", images)
	}
	st := srv.Blocks().Stats()
	if st.Blocks != severAt-1 || st.Refs != 0 {
		t.Fatalf("after sever: %d staged blocks (refs %d), want exactly %d acked puts (refs 0)",
			st.Blocks, st.Refs, severAt-1)
	}
	before := readBlockCounters(tel)
	if before.sent != severAt-1 {
		t.Fatalf("client counted %d blocks sent before the cut, want %d", before.sent, severAt-1)
	}

	// --- Heal and replay the same nonce+items: resume, don't resend. ----
	sever.part.Heal()
	if _, err := remote.UploadItems(nonce, items); err != nil {
		t.Fatalf("healed replay: %v", err)
	}
	after := readBlockCounters(tel)
	if d := after.queried - before.queried; d != totalBlocks {
		t.Fatalf("replay queried %d blocks, want %d", d, totalBlocks)
	}
	if d := after.skipped - before.skipped; d != severAt-1 {
		t.Fatalf("replay skipped %d blocks, want the %d already acked", d, severAt-1)
	}
	if d := after.sent - before.sent; d != totalBlocks-(severAt-1) {
		t.Fatalf("replay sent %d blocks, want only the %d missing", d, totalBlocks-(severAt-1))
	}
	// Across both attempts every payload byte crossed the wire exactly
	// once — that is the bandwidth claim of delta upload.
	if after.sent != totalBlocks || after.sentBytes != totalBytes {
		t.Fatalf("total sent %d blocks / %d bytes, want %d / %d (each block exactly once)",
			after.sent, after.sentBytes, totalBlocks, totalBytes)
	}

	// --- Exactly-once accounting, byte-identical to the clean run. ------
	if got := srv.Stats(); got != wantStats {
		t.Fatalf("after resume: %+v, clean run had %+v", got, wantStats)
	}
	if got := srv.Blocks().Stats(); got != wantBlocks {
		t.Fatalf("after resume block store: %+v, clean run had %+v", got, wantBlocks)
	}

	// --- Replaying the commit again dedups by nonce. ---------------------
	if _, err := remote.UploadItems(nonce, items); err != nil {
		t.Fatalf("second replay: %v", err)
	}
	if got := srv.Stats(); got != wantStats {
		t.Fatalf("double replay changed accounting: %+v, want %+v", got, wantStats)
	}
	if got := srv.Blocks().Stats(); got != wantBlocks {
		t.Fatalf("double replay changed block refs: %+v, want %+v", got, wantBlocks)
	}

	// --- A second client uploading identical images sends zero blocks. --
	tel2 := telemetry.NewRegistry()
	c2, err := DialOptions(addr, blockChaosOptions(9, tel2, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	remote2 := NewRemoteServer(c2)
	if _, err := remote2.UploadItems(c2.NewNonce(), items); err != nil {
		t.Fatalf("second client upload: %v", err)
	}
	cc := readBlockCounters(tel2)
	if cc.sent != 0 || cc.skipped != totalBlocks {
		t.Fatalf("second client sent %d blocks (skipped %d), want 0 payload blocks (%d skipped)",
			cc.sent, cc.skipped, totalBlocks)
	}
	bst := srv.Blocks().Stats()
	if bst.Blocks != totalBlocks || bst.Bytes != wantBlocks.Bytes {
		t.Fatalf("cross-client dedup failed: %d blocks / %d bytes stored, want %d / %d",
			bst.Blocks, bst.Bytes, totalBlocks, wantBlocks.Bytes)
	}
	if bst.Refs != 2*wantBlocks.Refs || bst.LogicalBytes != 2*wantBlocks.LogicalBytes {
		t.Fatalf("second commit should double refs/logical bytes: %+v vs base %+v", bst, wantBlocks)
	}
	if got := srv.Stats().Images; got != 2*len(items) {
		t.Fatalf("server holds %d images after two distinct uploads, want %d", got, 2*len(items))
	}
}
