package client

import (
	"testing"
	"time"

	"bees/internal/baseline"
	"bees/internal/core"
	"bees/internal/dataset"
	"bees/internal/energy"
	"bees/internal/netsim"
	"bees/internal/telemetry"
)

// latencyClient dials srv through a link that injects latency on every
// I/O but never faults, and exposes the registry whose "client.requests"
// counter is the logical round-trip count (it increments once per
// request, before any retries).
func latencyClient(t *testing.T, addr string) (*Client, *telemetry.Registry) {
	t.Helper()
	reg := telemetry.NewRegistry()
	c, err := DialOptions(addr, Options{
		RequestTimeout: 10 * time.Second,
		MaxRetries:     2,
		Seed:           1,
		Telemetry:      reg,
		Dial: netsim.FaultyDialer(netsim.FaultConfig{
			Seed:    1,
			Latency: 2 * time.Millisecond,
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, reg
}

// TestBatchRoundTripsBounded pins the tentpole's wire economics: a
// 64-image batch must complete CBRD + AIU in O(1) round trips — one
// batched query plus one batched upload per AIU window — where the
// legacy per-image path (core.PerImage over the same RemoteServer) pays
// at least one round trip per image. Under the injected per-I/O latency
// that difference is exactly where the paper's upload chatter goes.
func TestBatchRoundTripsBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("64-image pipeline run takes a few seconds")
	}
	const total = 64
	run := func(wrap func(*RemoteServer) core.ServerAPI) (core.BatchReport, int64) {
		_, addr := startServer(t)
		c, reg := latencyClient(t, addr)
		remote := NewRemoteServer(c)
		dev := core.NewDevice(nil, netsim.NewLink(256000), energy.DefaultModel())
		d := dataset.NewDisasterBatch(77, total, 8, 0)
		r := baseline.NewBEES().ProcessBatch(dev, wrap(remote), d.Batch)
		return r, reg.Counter("client.requests").Value()
	}

	batched, batchedTrips := run(func(r *RemoteServer) core.ServerAPI { return r })
	if batched.Degraded != 0 {
		t.Fatalf("latency-only link degraded %d requests", batched.Degraded)
	}
	// One CBRD query frame, one Hello (feature negotiation, cached for
	// the client's lifetime), then per AIU window the delta upload costs
	// a block query, at most one put frame (a window's payload fits well
	// under the default BlockPutBytes), and a manifest commit. Still
	// O(1) per window — the delta path spends its savings in bytes, not
	// round trips.
	window := core.DefaultConfig().UploadWindow
	windows := (batched.Uploaded + window - 1) / window
	maxTrips := int64(2 + 3*windows)
	if batchedTrips > maxTrips {
		t.Fatalf("batched pipeline used %d round trips for %d images (%d uploads), want <= %d",
			batchedTrips, total, batched.Uploaded, maxTrips)
	}

	legacy, legacyTrips := run(func(r *RemoteServer) core.ServerAPI { return core.PerImage{API: r} })
	if legacy.Degraded != 0 {
		t.Fatalf("legacy path degraded %d requests", legacy.Degraded)
	}
	if legacyTrips < int64(total) {
		t.Fatalf("legacy path used %d round trips, expected >= %d (one query per image)",
			legacyTrips, total)
	}
	if batched.Uploaded != legacy.Uploaded || batched.TotalBytes() != legacy.TotalBytes() {
		t.Fatalf("batched and legacy paths disagree on outcomes:\nbatched: %+v\nlegacy:  %+v",
			batched, legacy)
	}
	t.Logf("round trips: batched=%d legacy=%d (%d images, %d uploaded)",
		batchedTrips, legacyTrips, total, batched.Uploaded)
}
