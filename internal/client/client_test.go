package client

import (
	"net"
	"sync"
	"testing"
	"time"

	"bees/internal/dataset"
	"bees/internal/features"
	"bees/internal/server"
)

// startServer spins up a TCP server on a loopback port for the test.
func startServer(t *testing.T) (*server.Server, string) {
	t.Helper()
	srv := server.NewDefault()
	tcp := server.NewTCP(srv)
	addr, err := tcp.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { tcp.Close() })
	return srv, addr.String()
}

func dial(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr, 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func testSets(t *testing.T, n int) []*features.BinarySet {
	t.Helper()
	d := dataset.NewDisasterBatch(400, n, 0, 0)
	cfg := features.DefaultConfig()
	sets := make([]*features.BinarySet, n)
	for i, img := range d.Batch {
		sets[i] = features.ExtractORB(img.Render(), cfg)
		img.Free()
	}
	return sets
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", 200*time.Millisecond); err == nil {
		t.Fatal("dialing a closed port should fail")
	}
}

func TestUploadAndQueryOverTCP(t *testing.T) {
	srv, addr := startServer(t)
	c := dial(t, addr)
	sets := testSets(t, 2)

	// Empty server: no similarity.
	sims, err := c.QueryMax(sets)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if sims[0] != 0 || sims[1] != 0 {
		t.Fatalf("empty server sims: %v", sims)
	}

	id, err := c.Upload(sets[0], 77, 48.85, 2.35, []byte("payload-bytes"))
	if err != nil {
		t.Fatalf("upload: %v", err)
	}
	if e := srv.Get(0); e == nil || e.GroupID != 77 {
		t.Fatalf("server did not store upload (id=%d)", id)
	}

	sims, err = c.QueryMax(sets)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if sims[0] < 0.9 {
		t.Fatalf("uploaded image not found: sim=%v", sims[0])
	}
	if sims[1] > 0.1 {
		t.Fatalf("unrelated image matched: sim=%v", sims[1])
	}
}

func TestStatsOverTCP(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	sets := testSets(t, 1)
	if _, err := c.Upload(sets[0], 1, 0, 0, make([]byte, 1234)); err != nil {
		t.Fatal(err)
	}
	images, bytes, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if images != 1 || bytes != 1234 {
		t.Fatalf("stats: images=%d bytes=%d", images, bytes)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, addr := startServer(t)
	sets := testSets(t, 8)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr, 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			if _, err := c.Upload(sets[i], int64(i), 0, 0, []byte{1}); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.Images != 8 {
		t.Fatalf("server stored %d images, want 8", st.Images)
	}
}

func TestConcurrentRequestsOneClient(t *testing.T) {
	_, addr := startServer(t)
	c := dial(t, addr)
	sets := testSets(t, 4)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.Upload(sets[i], int64(i), 0, 0, []byte{1}); err != nil {
				errs <- err
			}
			if _, err := c.QueryMax(sets[i : i+1]); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestServerCloseTerminatesClients(t *testing.T) {
	srv := server.NewDefault()
	tcp := server.NewTCP(srv)
	addr, err := tcp.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := dial(t, addr.String())
	if err := tcp.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := tcp.Close(); err == nil {
		t.Fatal("double close should error")
	}
	sets := testSets(t, 1)
	if _, err := c.QueryMax(sets); err == nil {
		t.Fatal("request after server close should fail")
	}
}

// TestServerSurvivesGarbageFrames sends malformed bytes; the server must
// drop that connection but keep serving others.
func TestServerSurvivesGarbageFrames(t *testing.T) {
	_, addr := startServer(t)

	// Raw connection spewing garbage.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x99, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	raw.Close()

	// A well-behaved client must still work.
	c := dial(t, addr)
	sets := testSets(t, 1)
	if _, err := c.Upload(sets[0], 1, 0, 0, []byte{1}); err != nil {
		t.Fatalf("server died after garbage: %v", err)
	}
}

// TestServerRejectsOversizedFrame verifies the allocation guard.
func TestServerRejectsOversizedFrame(t *testing.T) {
	_, addr := startServer(t)
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	// Announce a 4 GiB frame.
	header := []byte{0xff, 0xff, 0xff, 0xff, 1}
	if _, err := raw.Write(header); err != nil {
		t.Fatal(err)
	}
	// The server must close the connection rather than allocate.
	raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := raw.Read(buf); err == nil {
		t.Fatal("expected connection close or error")
	}
	// And keep serving new clients.
	c := dial(t, addr)
	if _, _, err := c.Stats(); err != nil {
		t.Fatalf("server unusable after oversized frame: %v", err)
	}
}

// TestServerHandlesAbruptDisconnect verifies half-finished requests do
// not wedge the server.
func TestServerHandlesAbruptDisconnect(t *testing.T) {
	_, addr := startServer(t)
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	// Valid header promising payload, then hang up.
	raw.Write([]byte{100, 0, 0, 0, 1, 42})
	raw.Close()

	c := dial(t, addr)
	if _, _, err := c.Stats(); err != nil {
		t.Fatalf("server wedged by abrupt disconnect: %v", err)
	}
}
