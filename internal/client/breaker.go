package client

import (
	"math/rand"
	"sync"
	"time"

	"bees/internal/telemetry"
)

// Breaker states, exported through Metrics.BreakerState and the
// "client.breaker.state" gauge.
const (
	BreakerClosed   = 0 // requests flow
	BreakerOpen     = 1 // consecutive failures tripped the breaker; attempts held
	BreakerHalfOpen = 2 // hold expired; the next attempt is the probe
)

// breaker is a pacing circuit breaker for the disaster link. Unlike a
// fail-fast breaker it never rejects work — pipeline uploads must not be
// dropped just because the link flapped — it *holds* the next attempt
// until the cooldown passes. Holding does not consume the caller's retry
// budget, so a long partition ends with the retry budget still mostly
// intact and the request failing quickly into the outbox.
//
// closed → open after threshold consecutive transport failures;
// open → half-open once the hold expires (the single in-flight request —
// reqMu serializes them — becomes the probe); half-open → closed on a
// successful probe, or back to open with a doubled hold on a failed one.
//
// The same hold mechanism paces server-shed requests: hold(d) parks the
// next attempt for the server's retry-after hint without touching the
// failure count or escalating the cooldown.
type breaker struct {
	threshold   int
	base, max   time.Duration
	stateGauge  *telemetry.Gauge
	tripCounter *telemetry.Counter

	mu        sync.Mutex
	rng       *rand.Rand
	state     int
	failures  int
	cooldown  time.Duration // next open-hold, doubling up to max
	holdUntil time.Time
}

func newBreaker(threshold int, base, max time.Duration, seed int64, tel *telemetry.Registry) *breaker {
	b := &breaker{
		threshold:   threshold,
		base:        base,
		max:         max,
		cooldown:    base,
		rng:         rand.New(rand.NewSource(seed)),
		stateGauge:  tel.Gauge("client.breaker.state"),
		tripCounter: tel.Counter("client.breaker.trips"),
	}
	b.stateGauge.Set(BreakerClosed)
	return b
}

// wait blocks until the breaker permits an attempt (hold expired) or the
// client closes. An expired open hold transitions to half-open: the
// caller's attempt is the probe.
func (b *breaker) wait(closeCh <-chan struct{}) error {
	for {
		b.mu.Lock()
		d := time.Until(b.holdUntil)
		if d <= 0 {
			if b.state == BreakerOpen {
				b.setStateLocked(BreakerHalfOpen)
			}
			b.mu.Unlock()
			return nil
		}
		b.mu.Unlock()
		select {
		case <-time.After(d):
		case <-closeCh:
			return ErrClosed
		}
	}
}

// onSuccess records a working transport: failures reset, the cooldown
// de-escalates, and a half-open probe closes the breaker.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.cooldown = b.base
	if b.state != BreakerClosed {
		b.setStateLocked(BreakerClosed)
	}
}

// onFailure records a transport failure. A failed half-open probe
// reopens immediately with a doubled hold; in closed state the breaker
// trips once threshold consecutive failures accumulate.
func (b *breaker) onFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	if b.state == BreakerHalfOpen || b.failures >= b.threshold {
		b.tripLocked()
	}
}

// hold parks the next attempt for d (server busy hint). No failure
// accounting: the transport worked, the server just refused the load.
func (b *breaker) hold(d time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	until := time.Now().Add(d)
	if until.After(b.holdUntil) {
		b.holdUntil = until
	}
}

func (b *breaker) tripLocked() {
	b.setStateLocked(BreakerOpen)
	d := b.cooldown
	// ±50% seeded jitter — same rationale as retry backoff: a fleet of
	// phones that partitioned together must not probe in sync.
	d = d/2 + time.Duration(b.rng.Int63n(int64(d)))
	b.holdUntil = time.Now().Add(d)
	b.cooldown *= 2
	if b.cooldown > b.max {
		b.cooldown = b.max
	}
	b.tripCounter.Inc()
}

func (b *breaker) setStateLocked(s int) {
	b.state = s
	b.stateGauge.Set(float64(s))
}

// State returns the current breaker state (Breaker* constants).
func (b *breaker) State() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
