package client

import (
	"encoding/binary"
	"hash/fnv"
	"log"
	"math"
	"sync"

	"bees/internal/blockstore"
	"bees/internal/features"
	"bees/internal/index"
	"bees/internal/server"
	"bees/internal/wire"
)

// RemoteServer adapts a Client to core.ServerAPI so the full BEES
// pipeline (and every baseline) can run against a beesd server over TCP
// exactly as it runs against an in-process server. The client retries
// transient failures internally; only a request whose retry budget is
// exhausted reaches this layer, and in a disaster scenario that is
// survivable, so it degrades rather than aborts: failed queries report
// similarity 0 (image treated as unique) and failed uploads return -1.
// Err exposes the last failure and TakeDegraded the degradation count,
// which core.BatchAccounting folds into BatchReport.Degraded.
type RemoteServer struct {
	c *Client

	mu       sync.Mutex
	lastErr  error
	degraded int
}

// NewRemoteServer wraps a connected client.
func NewRemoteServer(c *Client) *RemoteServer { return &RemoteServer{c: c} }

// QueryMaxBatch implements core.ServerAPI over the wire: the whole
// batch's CBRD query costs one round trip. A request whose retry budget
// is exhausted degrades every set it carried — each image reports
// similarity 0 and is treated as unique.
func (r *RemoteServer) QueryMaxBatch(sets []*features.BinarySet) []float64 {
	sims, err := r.c.QueryMax(sets)
	if err != nil {
		r.degradeN(err, len(sets))
		log.Printf("beesctl: batch query failed, treating %d images as unique: %v", len(sets), err)
		return make([]float64, len(sets))
	}
	return sims
}

// UploadBatch implements core.ServerAPI over the wire. Each item's blob
// is a payload of exactly Meta.Bytes bytes so the transport carries the
// real (compressed) image size. On failure only the items of the frames
// that never completed count as degraded.
func (r *RemoteServer) UploadBatch(items []server.UploadItem) error {
	ids, err := r.c.UploadBatch(wireItems(items))
	if err != nil {
		r.degradeN(err, len(items)-len(ids))
		log.Printf("beesctl: batch upload failed after %d of %d items: %v", len(ids), len(items), err)
		return err
	}
	return nil
}

// wireItems converts server upload items to their wire form; each item's
// blob is a payload of exactly Meta.Bytes bytes so the transport carries
// the real (compressed) image size. The bytes are synthesized
// deterministically from the item's identity (descriptors + metadata),
// which is what makes delta upload testable end to end: the same image
// produces the same blob — and therefore the same block hashes — on
// every client and every outbox replay, while distinct images produce
// distinct payloads that cannot cross-dedup.
func wireItems(items []server.UploadItem) []wire.UploadBatchItem {
	out := make([]wire.UploadBatchItem, len(items))
	for i, it := range items {
		set := it.Set
		if set == nil {
			set = &features.BinarySet{}
		}
		out[i] = wire.UploadBatchItem{
			Set:     set,
			GroupID: it.Meta.GroupID,
			Lat:     it.Meta.Lat,
			Lon:     it.Meta.Lon,
			Gain:    it.Meta.Gain,
			Blob:    blockstore.SynthPayload(itemSeed(&it), it.Meta.Bytes),
		}
	}
	return out
}

// itemSeed folds an item's identity — feature descriptors plus the
// metadata that defines "the same image" — into the synthesis seed.
// Gain is deliberately excluded: it is a per-run ranking artifact, not
// part of the image.
func itemSeed(it *server.UploadItem) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	w(uint64(it.Meta.GroupID))
	w(math.Float64bits(it.Meta.Lat))
	w(math.Float64bits(it.Meta.Lon))
	w(uint64(it.Meta.Bytes))
	if it.Set != nil {
		for _, d := range it.Set.Descriptors {
			for _, word := range d {
				w(word)
			}
		}
	}
	return h.Sum64()
}

// NewUploadNonce implements core.Uploader: the pipeline stamps each
// upload chunk with a nonce before the first attempt so a later outbox
// replay of the same chunk dedups against it.
func (r *RemoteServer) NewUploadNonce() uint64 { return r.c.NewNonce() }

// UploadItems implements core.Uploader: one upload chunk under the
// caller's nonce. When Hello negotiation says both ends speak block
// transfer, the chunk goes as a delta upload (query → put missing →
// commit); otherwise — old server, negotiation disabled, or the Hello
// itself failed in transit — it falls back to a single whole-image
// batch frame. Either way the nonce makes replays idempotent, so an
// outbox replay of a chunk that half-landed resumes from the blocks the
// server acked instead of resending the image. Failures degrade the
// whole chunk (commits and batch frames are atomic).
func (r *RemoteServer) UploadItems(nonce uint64, items []server.UploadItem) ([]int64, error) {
	wi := wireItems(items)
	blocks, err := r.c.NegotiateBlocks()
	if err != nil {
		log.Printf("beesctl: feature negotiation failed, using whole-image upload: %v", err)
		blocks = false
	}
	var ids []int64
	if blocks {
		ids, err = r.uploadBlocks(nonce, wi)
	} else {
		ids, err = r.c.UploadBatchNonce(nonce, wi)
	}
	if err != nil {
		r.degradeN(err, len(items))
		log.Printf("beesctl: nonce upload of %d items failed: %v", len(items), err)
		return nil, err
	}
	return ids, nil
}

// UploadBatchWithNonce is the pre-block-store upload entry point.
//
// Deprecated: use UploadItems, which also returns the assigned IDs.
func (r *RemoteServer) UploadBatchWithNonce(nonce uint64, items []server.UploadItem) error {
	_, err := r.UploadItems(nonce, items)
	return err
}

// uploadBlocks runs one chunk through the delta path: manifest every
// blob, ask the server which blocks it already holds (batch-wide dedup
// — two identical images in one chunk cost one payload), upload the
// missing ones in put frames bounded by Options.BlockPutBytes, then
// commit the manifests under the chunk's nonce.
func (r *RemoteServer) uploadBlocks(nonce uint64, items []wire.UploadBatchItem) ([]int64, error) {
	blockSize := r.c.opts.BlockSize
	manifests := make([]wire.ManifestItem, len(items))
	var hashes []blockstore.Hash
	blockData := make(map[blockstore.Hash][]byte)
	for i := range items {
		it := &items[i]
		m := blockstore.ManifestOf(it.Blob, blockSize)
		manifests[i] = wire.ManifestItem{
			Set:        it.Set,
			GroupID:    it.GroupID,
			Lat:        it.Lat,
			Lon:        it.Lon,
			Gain:       it.Gain,
			TotalBytes: m.TotalBytes,
			BlockSize:  uint32(m.BlockSize),
			Hashes:     m.Hashes,
		}
		parts := blockstore.Split(it.Blob, blockSize)
		for j, h := range m.Hashes {
			if _, ok := blockData[h]; !ok {
				blockData[h] = parts[j]
				hashes = append(hashes, h)
			}
		}
	}
	if len(hashes) > 0 {
		have, err := r.c.QueryBlocks(hashes)
		if err != nil {
			return nil, err
		}
		var put []wire.Block
		putBytes := 0
		flush := func() error {
			if len(put) == 0 {
				return nil
			}
			if _, _, err := r.c.PutBlocks(put); err != nil {
				return err
			}
			r.c.blocksSent.Add(int64(len(put)))
			r.c.blocksSentBytes.Add(int64(putBytes))
			put, putBytes = put[:0], 0
			return nil
		}
		for i, h := range hashes {
			data := blockData[h]
			if have[i] {
				r.c.blocksSkipped.Inc()
				r.c.blocksSkippedBytes.Add(int64(len(data)))
				continue
			}
			if len(put) > 0 && putBytes+len(data) > r.c.opts.BlockPutBytes {
				if err := flush(); err != nil {
					return nil, err
				}
			}
			put = append(put, wire.Block{Hash: h, Data: data})
			putBytes += len(data)
		}
		if err := flush(); err != nil {
			return nil, err
		}
	}
	return r.c.CommitManifests(nonce, manifests)
}

// QueryMax is the legacy per-image query, kept for per-image callers
// (core.PerImage wraps it for the batched-vs-legacy equivalence tests).
func (r *RemoteServer) QueryMax(set *features.BinarySet) float64 {
	sims, err := r.c.QueryMax([]*features.BinarySet{set})
	if err != nil {
		r.degradeN(err, 1)
		log.Printf("beesctl: query failed, treating image as unique: %v", err)
		return 0
	}
	return sims[0]
}

// Upload is the legacy per-image upload; see QueryMax.
func (r *RemoteServer) Upload(set *features.BinarySet, meta server.UploadMeta) index.ImageID {
	blob := make([]byte, meta.Bytes)
	id, err := r.c.Upload(set, meta.GroupID, meta.Lat, meta.Lon, blob)
	if err != nil {
		r.degradeN(err, 1)
		log.Printf("beesctl: upload failed: %v", err)
		return -1
	}
	return index.ImageID(id)
}

func (r *RemoteServer) degradeN(err error, n int) {
	if n <= 0 {
		return
	}
	r.mu.Lock()
	r.lastErr = err
	r.degraded += n
	r.mu.Unlock()
}

// Err returns the last transport error, if any.
func (r *RemoteServer) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastErr
}

// TakeDegraded returns the number of requests that degraded (exhausted
// their retries) since the last call, and resets the counter — one call
// per batch gives per-batch counts.
func (r *RemoteServer) TakeDegraded() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	d := r.degraded
	r.degraded = 0
	return d
}
