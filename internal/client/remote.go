package client

import (
	"log"
	"sync"

	"bees/internal/features"
	"bees/internal/index"
	"bees/internal/server"
)

// RemoteServer adapts a Client to core.ServerAPI so the full BEES
// pipeline (and every baseline) can run against a beesd server over TCP
// exactly as it runs against an in-process server. The client retries
// transient failures internally; only a request whose retry budget is
// exhausted reaches this layer, and in a disaster scenario that is
// survivable, so it degrades rather than aborts: failed queries report
// similarity 0 (image treated as unique) and failed uploads return -1.
// Err exposes the last failure and TakeDegraded the degradation count,
// which core.BatchAccounting folds into BatchReport.Degraded.
type RemoteServer struct {
	c *Client

	mu       sync.Mutex
	lastErr  error
	degraded int
}

// NewRemoteServer wraps a connected client.
func NewRemoteServer(c *Client) *RemoteServer { return &RemoteServer{c: c} }

// QueryMax implements core.ServerAPI over the wire.
func (r *RemoteServer) QueryMax(set *features.BinarySet) float64 {
	sims, err := r.c.QueryMax([]*features.BinarySet{set})
	if err != nil {
		r.degrade(err)
		log.Printf("beesctl: query failed, treating image as unique: %v", err)
		return 0
	}
	return sims[0]
}

// Upload implements core.ServerAPI over the wire. The blob is a payload
// of exactly meta.Bytes bytes so the transport carries the real
// (compressed) image size.
func (r *RemoteServer) Upload(set *features.BinarySet, meta server.UploadMeta) index.ImageID {
	blob := make([]byte, meta.Bytes)
	id, err := r.c.Upload(set, meta.GroupID, meta.Lat, meta.Lon, blob)
	if err != nil {
		r.degrade(err)
		log.Printf("beesctl: upload failed: %v", err)
		return -1
	}
	return index.ImageID(id)
}

func (r *RemoteServer) degrade(err error) {
	r.mu.Lock()
	r.lastErr = err
	r.degraded++
	r.mu.Unlock()
}

// Err returns the last transport error, if any.
func (r *RemoteServer) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastErr
}

// TakeDegraded returns the number of requests that degraded (exhausted
// their retries) since the last call, and resets the counter — one call
// per batch gives per-batch counts.
func (r *RemoteServer) TakeDegraded() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	d := r.degraded
	r.degraded = 0
	return d
}
