package client

import (
	"log"
	"sync"

	"bees/internal/features"
	"bees/internal/index"
	"bees/internal/server"
	"bees/internal/wire"
)

// RemoteServer adapts a Client to core.ServerAPI so the full BEES
// pipeline (and every baseline) can run against a beesd server over TCP
// exactly as it runs against an in-process server. The client retries
// transient failures internally; only a request whose retry budget is
// exhausted reaches this layer, and in a disaster scenario that is
// survivable, so it degrades rather than aborts: failed queries report
// similarity 0 (image treated as unique) and failed uploads return -1.
// Err exposes the last failure and TakeDegraded the degradation count,
// which core.BatchAccounting folds into BatchReport.Degraded.
type RemoteServer struct {
	c *Client

	mu       sync.Mutex
	lastErr  error
	degraded int
}

// NewRemoteServer wraps a connected client.
func NewRemoteServer(c *Client) *RemoteServer { return &RemoteServer{c: c} }

// QueryMaxBatch implements core.ServerAPI over the wire: the whole
// batch's CBRD query costs one round trip. A request whose retry budget
// is exhausted degrades every set it carried — each image reports
// similarity 0 and is treated as unique.
func (r *RemoteServer) QueryMaxBatch(sets []*features.BinarySet) []float64 {
	sims, err := r.c.QueryMax(sets)
	if err != nil {
		r.degradeN(err, len(sets))
		log.Printf("beesctl: batch query failed, treating %d images as unique: %v", len(sets), err)
		return make([]float64, len(sets))
	}
	return sims
}

// UploadBatch implements core.ServerAPI over the wire. Each item's blob
// is a payload of exactly Meta.Bytes bytes so the transport carries the
// real (compressed) image size. On failure only the items of the frames
// that never completed count as degraded.
func (r *RemoteServer) UploadBatch(items []server.UploadItem) error {
	ids, err := r.c.UploadBatch(wireItems(items))
	if err != nil {
		r.degradeN(err, len(items)-len(ids))
		log.Printf("beesctl: batch upload failed after %d of %d items: %v", len(ids), len(items), err)
		return err
	}
	return nil
}

// wireItems converts server upload items to their wire form; each item's
// blob is a payload of exactly Meta.Bytes bytes so the transport carries
// the real (compressed) image size.
func wireItems(items []server.UploadItem) []wire.UploadBatchItem {
	out := make([]wire.UploadBatchItem, len(items))
	for i, it := range items {
		set := it.Set
		if set == nil {
			set = &features.BinarySet{}
		}
		out[i] = wire.UploadBatchItem{
			Set:     set,
			GroupID: it.Meta.GroupID,
			Lat:     it.Meta.Lat,
			Lon:     it.Meta.Lon,
			Gain:    it.Meta.Gain,
			Blob:    make([]byte, it.Meta.Bytes),
		}
	}
	return out
}

// NewUploadNonce implements core.NonceUploader: the pipeline stamps each
// upload chunk with a nonce before the first attempt so a later outbox
// replay of the same chunk dedups against it.
func (r *RemoteServer) NewUploadNonce() uint64 { return r.c.NewNonce() }

// UploadBatchWithNonce implements core.NonceUploader: one batched-upload
// frame under the caller's nonce. Used both for the pipeline's first
// attempt on an outbox-tracked chunk and for the drainer's replays.
// Failures degrade the whole chunk (no partial frames here).
func (r *RemoteServer) UploadBatchWithNonce(nonce uint64, items []server.UploadItem) error {
	if _, err := r.c.UploadBatchNonce(nonce, wireItems(items)); err != nil {
		r.degradeN(err, len(items))
		log.Printf("beesctl: nonce upload of %d items failed: %v", len(items), err)
		return err
	}
	return nil
}

// QueryMax is the legacy per-image query, kept for per-image callers
// (core.PerImage wraps it for the batched-vs-legacy equivalence tests).
func (r *RemoteServer) QueryMax(set *features.BinarySet) float64 {
	sims, err := r.c.QueryMax([]*features.BinarySet{set})
	if err != nil {
		r.degradeN(err, 1)
		log.Printf("beesctl: query failed, treating image as unique: %v", err)
		return 0
	}
	return sims[0]
}

// Upload is the legacy per-image upload; see QueryMax.
func (r *RemoteServer) Upload(set *features.BinarySet, meta server.UploadMeta) index.ImageID {
	blob := make([]byte, meta.Bytes)
	id, err := r.c.Upload(set, meta.GroupID, meta.Lat, meta.Lon, blob)
	if err != nil {
		r.degradeN(err, 1)
		log.Printf("beesctl: upload failed: %v", err)
		return -1
	}
	return index.ImageID(id)
}

func (r *RemoteServer) degradeN(err error, n int) {
	if n <= 0 {
		return
	}
	r.mu.Lock()
	r.lastErr = err
	r.degraded += n
	r.mu.Unlock()
}

// Err returns the last transport error, if any.
func (r *RemoteServer) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastErr
}

// TakeDegraded returns the number of requests that degraded (exhausted
// their retries) since the last call, and resets the counter — one call
// per batch gives per-batch counts.
func (r *RemoteServer) TakeDegraded() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	d := r.degraded
	r.degraded = 0
	return d
}
