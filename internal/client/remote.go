package client

import (
	"log"

	"bees/internal/features"
	"bees/internal/index"
	"bees/internal/server"
)

// RemoteServer adapts a Client to core.ServerAPI so the full BEES
// pipeline (and every baseline) can run against a beesd server over TCP
// exactly as it runs against an in-process server. Network errors are
// survivable in a disaster scenario, so they degrade rather than abort:
// failed queries report similarity 0 (image treated as unique) and
// failed uploads return -1; Err exposes the last failure.
type RemoteServer struct {
	c       *Client
	lastErr error
}

// NewRemoteServer wraps a connected client.
func NewRemoteServer(c *Client) *RemoteServer { return &RemoteServer{c: c} }

// QueryMax implements core.ServerAPI over the wire.
func (r *RemoteServer) QueryMax(set *features.BinarySet) float64 {
	sims, err := r.c.QueryMax([]*features.BinarySet{set})
	if err != nil {
		r.lastErr = err
		log.Printf("beesctl: query failed, treating image as unique: %v", err)
		return 0
	}
	return sims[0]
}

// Upload implements core.ServerAPI over the wire. The blob is a payload
// of exactly meta.Bytes bytes so the transport carries the real
// (compressed) image size.
func (r *RemoteServer) Upload(set *features.BinarySet, meta server.UploadMeta) index.ImageID {
	blob := make([]byte, meta.Bytes)
	id, err := r.c.Upload(set, meta.GroupID, meta.Lat, meta.Lon, blob)
	if err != nil {
		r.lastErr = err
		log.Printf("beesctl: upload failed: %v", err)
		return -1
	}
	return index.ImageID(id)
}

// Err returns the last transport error, if any.
func (r *RemoteServer) Err() error { return r.lastErr }
