// Package diskfault is the disk-side sibling of netsim.FaultConn: an
// injectable filesystem wrapper that the durable layers (internal/wal,
// the server snapshot, the outbox spill directory) write through, so
// chaos tests can seed short writes, fsync failures, latent bit-flip
// corruption and — most importantly — crash points that freeze the
// "disk" at an arbitrary write boundary.
//
// The crash model is kill-anywhere: when the configured crash point is
// reached, the op in flight takes partial effect (a Write persists only
// a prefix, any other op does nothing) and every later operation fails
// with ErrCrashed. Nothing written after the crash point reaches the
// backing directory, exactly as if the process had been SIGKILLed at
// that instant. The test then discards the in-memory state and recovers
// a fresh process over the same directory through a clean FS.
//
// All probabilistic faults draw from a deterministic seeded RNG, so a
// failing chaos run replays exactly.
package diskfault

import (
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// ErrCrashed is returned by every operation after the crash point has
// fired: the simulated machine is off, the disk holds whatever had been
// persisted, and only a fresh FS over the same directory can read it.
var ErrCrashed = errors.New("diskfault: crashed")

// Crash is the value panicked when Config.Panic is set — single-
// goroutine harnesses recover it to simulate dying mid-call.
type Crash struct{ Op string }

func (c *Crash) Error() string { return "diskfault: crash panic in " + c.Op }

// File is the handle surface the durable layers need: sequential reads
// and writes plus explicit durability.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file to stable storage (fsync).
	Sync() error
}

// FS is the filesystem surface the durable layers write through. OS()
// is the real implementation; Faulty wraps any FS with injected faults.
type FS interface {
	// Create truncates-or-creates name for writing.
	Create(name string) (File, error)
	// Open opens name for reading.
	Open(name string) (File, error)
	ReadDir(name string) ([]os.DirEntry, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	MkdirAll(path string, perm os.FileMode) error
	Stat(name string) (os.FileInfo, error)
	// SyncDir fsyncs a directory, making renames and unlinks inside it
	// durable — the half of atomic-rename persistence os.Rename alone
	// does not provide.
	SyncDir(name string) error
}

// OS returns the real filesystem.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) Create(name string) (File, error) { return os.Create(name) }
func (osFS) Open(name string) (File, error)   { return os.Open(name) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error) {
	return os.ReadDir(name)
}
func (osFS) Rename(oldpath, newpath string) error        { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                    { return os.Remove(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Stat(name string) (os.FileInfo, error)       { return os.Stat(name) }

func (osFS) SyncDir(name string) error {
	d, err := os.Open(filepath.Clean(name))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Config describes how a Faulty filesystem misbehaves. The zero value
// injects nothing.
type Config struct {
	// Seed fixes the probabilistic fault schedule.
	Seed int64
	// CrashAfterOps, when positive, crashes the filesystem at the Nth
	// mutating operation (1-based; Create/Write/Sync/Rename/Remove/
	// SyncDir each count one). A Write at the crash point persists only
	// the first half of its bytes — a torn write — before dying.
	CrashAfterOps int64
	// Panic crashes by panicking with *Crash instead of returning
	// ErrCrashed, so a single-goroutine harness can die mid-call and
	// recover at its top level.
	Panic bool
	// ShortWriteProb is the chance a Write persists only a prefix and
	// reports ErrShortWrite, as a full disk or interrupted syscall would.
	ShortWriteProb float64
	// SyncErrProb is the chance a Sync reports failure. The data may or
	// may not be durable — exactly the ambiguity real fsync errors carry.
	SyncErrProb float64
	// CorruptProb is the chance a Write flips one bit of its data and
	// then "succeeds" — latent corruption only checksums catch later.
	CorruptProb float64
}

// Faulty wraps an FS with the configured fault schedule. Safe for
// concurrent use.
type Faulty struct {
	inner FS
	cfg   Config

	mu  sync.Mutex // guards rng
	rng *rand.Rand

	ops     atomic.Int64
	crashed atomic.Bool
}

// New wraps the real filesystem with cfg's fault schedule.
func New(cfg Config) *Faulty { return Wrap(OS(), cfg) }

// Wrap wraps an arbitrary FS with cfg's fault schedule.
func Wrap(inner FS, cfg Config) *Faulty {
	return &Faulty{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Crashed reports whether the crash point has fired.
func (f *Faulty) Crashed() bool { return f.crashed.Load() }

// Ops returns how many mutating operations have been attempted — run a
// workload once against a counting FS to learn how many crash points a
// kill-anywhere sweep must cover.
func (f *Faulty) Ops() int64 { return f.ops.Load() }

// step accounts one mutating op and reports whether this op is the
// crash point. After the crash every op fails without effect.
func (f *Faulty) step(op string) (crashNow bool, err error) {
	if f.crashed.Load() {
		return false, ErrCrashed
	}
	n := f.ops.Add(1)
	if f.cfg.CrashAfterOps > 0 && n >= f.cfg.CrashAfterOps {
		f.crashed.Store(true)
		return true, nil
	}
	return false, nil
}

// die finishes a crash: panic or error per config.
func (f *Faulty) die(op string) error {
	if f.cfg.Panic {
		panic(&Crash{Op: op})
	}
	return ErrCrashed
}

// roll draws one probability check from the seeded stream.
func (f *Faulty) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	f.mu.Lock()
	hit := f.rng.Float64() < p
	f.mu.Unlock()
	return hit
}

func (f *Faulty) guardRead() error {
	if f.crashed.Load() {
		return ErrCrashed
	}
	return nil
}

func (f *Faulty) Create(name string) (File, error) {
	crash, err := f.step("create")
	if err != nil {
		return nil, err
	}
	if crash {
		return nil, f.die("create")
	}
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultyFile{fs: f, inner: file}, nil
}

func (f *Faulty) Open(name string) (File, error) {
	if err := f.guardRead(); err != nil {
		return nil, err
	}
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultyFile{fs: f, inner: file}, nil
}

func (f *Faulty) ReadDir(name string) ([]os.DirEntry, error) {
	if err := f.guardRead(); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(name)
}

func (f *Faulty) Rename(oldpath, newpath string) error {
	crash, err := f.step("rename")
	if err != nil {
		return err
	}
	if crash {
		return f.die("rename")
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *Faulty) Remove(name string) error {
	crash, err := f.step("remove")
	if err != nil {
		return err
	}
	if crash {
		return f.die("remove")
	}
	return f.inner.Remove(name)
}

func (f *Faulty) MkdirAll(path string, perm os.FileMode) error {
	if err := f.guardRead(); err != nil {
		return err
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *Faulty) Stat(name string) (os.FileInfo, error) {
	if err := f.guardRead(); err != nil {
		return nil, err
	}
	return f.inner.Stat(name)
}

func (f *Faulty) SyncDir(name string) error {
	crash, err := f.step("syncdir")
	if err != nil {
		return err
	}
	if crash {
		return f.die("syncdir")
	}
	if f.roll(f.cfg.SyncErrProb) {
		return errors.New("diskfault: injected directory fsync error")
	}
	return f.inner.SyncDir(name)
}

// faultyFile threads every write and sync through the parent schedule.
type faultyFile struct {
	fs    *Faulty
	inner File
}

func (ff *faultyFile) Read(p []byte) (int, error) {
	if err := ff.fs.guardRead(); err != nil {
		return 0, err
	}
	return ff.inner.Read(p)
}

func (ff *faultyFile) Write(p []byte) (int, error) {
	crash, err := ff.fs.step("write")
	if err != nil {
		return 0, err
	}
	if crash {
		// Torn write: the first half reaches the disk, then the machine
		// dies. Recovery must detect the partial frame by checksum.
		n, _ := ff.inner.Write(p[:len(p)/2])
		return n, ff.fs.die("write")
	}
	if ff.fs.roll(ff.fs.cfg.ShortWriteProb) {
		n, _ := ff.inner.Write(p[:len(p)/2])
		return n, io.ErrShortWrite
	}
	if ff.fs.roll(ff.fs.cfg.CorruptProb) && len(p) > 0 {
		ff.fs.mu.Lock()
		pos, bit := ff.fs.rng.Intn(len(p)), ff.fs.rng.Intn(8)
		ff.fs.mu.Unlock()
		tainted := append([]byte(nil), p...)
		tainted[pos] ^= 1 << bit
		n, err := ff.inner.Write(tainted)
		if err != nil {
			return n, err
		}
		return len(p), nil
	}
	return ff.inner.Write(p)
}

func (ff *faultyFile) Sync() error {
	crash, err := ff.fs.step("sync")
	if err != nil {
		return err
	}
	if crash {
		// The data may have reached the platter before the crash; what is
		// guaranteed lost is the *acknowledgement*. Leave the bytes as
		// written and die.
		return ff.fs.die("sync")
	}
	if ff.fs.roll(ff.fs.cfg.SyncErrProb) {
		return errors.New("diskfault: injected fsync error")
	}
	return ff.inner.Sync()
}

func (ff *faultyFile) Close() error {
	// Closing after a crash is allowed (defers run in the dying test);
	// it just must not flush anything new — the OS file close below
	// writes nothing by itself.
	return ff.inner.Close()
}
