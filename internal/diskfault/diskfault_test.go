package diskfault

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func readAll(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestOSRoundTrip(t *testing.T) {
	fs := OS()
	dir := t.TempDir()
	path := filepath.Join(dir, "a")
	f, err := fs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rename(path, path+".2"); err != nil {
		t.Fatal(err)
	}
	if err := fs.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	g, err := fs.Open(path + ".2")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(g)
	g.Close()
	if err != nil || string(got) != "hello" {
		t.Fatalf("read back %q, %v", got, err)
	}
	if _, err := fs.Stat(path + ".2"); err != nil {
		t.Fatal(err)
	}
	ents, err := fs.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("ReadDir: %v, %v", ents, err)
	}
	if err := fs.MkdirAll(filepath.Join(dir, "x/y"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(path + ".2"); err != nil {
		t.Fatal(err)
	}
}

// TestCrashFreezesDisk proves the kill-anywhere model: the crash-point
// write persists exactly a prefix, and nothing after the crash reaches
// the backing directory.
func TestCrashFreezesDisk(t *testing.T) {
	dir := t.TempDir()
	fs := New(Config{CrashAfterOps: 3}) // create(1), write(2), write(3) = crash
	f, err := fs.Create(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("bbbb")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash-point write err = %v, want ErrCrashed", err)
	}
	if !fs.Crashed() {
		t.Fatal("Crashed() false after crash point")
	}
	// Every later op fails without effect.
	if _, err := f.Write([]byte("cccc")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write err = %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync err = %v", err)
	}
	if _, err := fs.Create(filepath.Join(dir, "g")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash create err = %v", err)
	}
	if err := fs.Rename(filepath.Join(dir, "f"), filepath.Join(dir, "h")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash rename err = %v", err)
	}
	if err := fs.Remove(filepath.Join(dir, "f")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash remove err = %v", err)
	}
	if err := fs.SyncDir(dir); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash syncdir err = %v", err)
	}
	if _, err := fs.Open(filepath.Join(dir, "f")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash open err = %v", err)
	}
	if _, err := fs.ReadDir(dir); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash readdir err = %v", err)
	}
	if _, err := fs.Stat(dir); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash stat err = %v", err)
	}
	if err := fs.MkdirAll(filepath.Join(dir, "m"), 0o755); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash mkdirall err = %v", err)
	}
	f.Close() // allowed: defers run in the dying process

	// A clean FS over the same directory sees the torn state: the full
	// first write plus half of the crash-point write.
	if got := readAll(t, filepath.Join(dir, "f")); string(got) != "aaaabb" {
		t.Fatalf("disk frozen at %q, want %q", got, "aaaabb")
	}
}

func TestCrashPanic(t *testing.T) {
	dir := t.TempDir()
	fs := New(Config{CrashAfterOps: 2, Panic: true})
	f, err := fs.Create(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			r := recover()
			c, ok := r.(*Crash)
			if !ok {
				t.Fatalf("recovered %v, want *Crash", r)
			}
			if c.Op != "write" || c.Error() == "" {
				t.Fatalf("crash op %q", c.Op)
			}
		}()
		f.Write([]byte("xxxx"))
		t.Fatal("write did not panic")
	}()
	if !fs.Crashed() {
		t.Fatal("Crashed() false after panic crash")
	}
}

func TestOpsCounting(t *testing.T) {
	dir := t.TempDir()
	fs := New(Config{})
	f, _ := fs.Create(filepath.Join(dir, "f")) // op 1
	f.Write([]byte("x"))                       // op 2
	f.Sync()                                   // op 3
	f.Close()
	fs.Rename(filepath.Join(dir, "f"), filepath.Join(dir, "g")) // op 4
	fs.SyncDir(dir)                                             // op 5
	fs.Remove(filepath.Join(dir, "g"))                          // op 6
	if got := fs.Ops(); got != 6 {
		t.Fatalf("Ops() = %d, want 6", got)
	}
}

func TestShortWrite(t *testing.T) {
	dir := t.TempDir()
	fs := New(Config{Seed: 1, ShortWriteProb: 1})
	f, err := fs.Create(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("abcdef"))
	if !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("err = %v, want ErrShortWrite", err)
	}
	if n != 3 {
		t.Fatalf("short write persisted %d bytes, want 3", n)
	}
	f.Close()
	if got := readAll(t, filepath.Join(dir, "f")); string(got) != "abc" {
		t.Fatalf("on disk: %q", got)
	}
}

func TestSyncError(t *testing.T) {
	dir := t.TempDir()
	fs := New(Config{Seed: 2, SyncErrProb: 1})
	f, err := fs.Create(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err == nil {
		t.Fatal("injected sync error did not fire")
	}
	f.Close()
	if err := fs.SyncDir(dir); err == nil {
		t.Fatal("injected dir sync error did not fire")
	}
}

// TestCorruptWrite: the write reports success for the full length but
// the stored bytes differ in exactly one bit.
func TestCorruptWrite(t *testing.T) {
	dir := t.TempDir()
	fs := New(Config{Seed: 3, CorruptProb: 1})
	f, err := fs.Create(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("abcdefgh")
	n, err := f.Write(data)
	if err != nil || n != len(data) {
		t.Fatalf("corrupt write: n=%d err=%v", n, err)
	}
	f.Close()
	got := readAll(t, filepath.Join(dir, "f"))
	if len(got) != len(data) {
		t.Fatalf("length changed: %d", len(got))
	}
	diffBits := 0
	for i := range got {
		for b := 0; b < 8; b++ {
			if (got[i]^data[i])>>b&1 == 1 {
				diffBits++
			}
		}
	}
	if diffBits != 1 {
		t.Fatalf("%d bits flipped, want exactly 1", diffBits)
	}
	// The caller's buffer must not be mutated.
	if string(data) != "abcdefgh" {
		t.Fatalf("caller buffer mutated: %q", data)
	}
}

// TestDeterministicSchedule: same seed, same fault decisions.
func TestDeterministicSchedule(t *testing.T) {
	run := func() []bool {
		dir := t.TempDir()
		fs := New(Config{Seed: 77, ShortWriteProb: 0.5})
		f, _ := fs.Create(filepath.Join(dir, "f"))
		defer f.Close()
		var outcome []bool
		for i := 0; i < 32; i++ {
			_, err := f.Write([]byte("0123456789"))
			outcome = append(outcome, err == nil)
		}
		return outcome
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at op %d", i)
		}
	}
}
