# BEES build/verify entry points.
#
# tier1 is the seed gate every PR must keep green; tier2 adds vet and the
# race detector over the whole tree (the wire path's chaos tests rely on
# it to prove the client/server are race-clean).

GO ?= go

.PHONY: all build tier1 tier2 fuzz bench

all: tier1

build:
	$(GO) build ./...

tier1: build
	$(GO) vet ./cmd/... ./examples/...
	$(GO) test ./...

# tier2's race run covers the telemetry registry's concurrency tests
# (internal/telemetry: parallel writers + snapshot readers) and the
# chaos tests — the partition test (client/partition_chaos_test.go)
# drives the full pipeline through a severed link plus a beesd restart,
# and the race detector is what makes them a proof rather than a smoke
# test. The explicit -timeout generously covers the sim/harness
# packages, whose CPU-bound lifetime simulations can exceed go test's
# default 10m per-package budget under the race detector's slowdown on
# small (single-core CI) machines; a genuine deadlock still fails, just
# later. tier2 also spends a short fuzz budget on each fuzz target.
tier2: fuzz
	$(GO) vet ./...
	$(GO) test -race -timeout 45m ./...

# Short fuzz burst over every fuzz target (their seed corpora always run
# as plain tests in tier1; this explores beyond them). Each target fuzzes
# for FUZZTIME; -run '^$' skips the package's unit tests so the whole
# budget goes to fuzzing.
FUZZTIME ?= 10s
fuzz:
	$(GO) test ./internal/wire -run '^$$' -fuzz FuzzReadFrame -fuzztime $(FUZZTIME)
	$(GO) test ./internal/server -run '^$$' -fuzz FuzzLoadSnapshot -fuzztime $(FUZZTIME)

# Index + pipeline micro-benchmarks with allocation stats, written as
# BENCH_pipeline.json. The raw `go test -bench` text is embedded under
# the "raw" key, so a baseline for benchstat is one jq away:
#   jq -r .raw BENCH_pipeline.json > old.txt && benchstat old.txt new.txt
# The pipeline benchmark runs whole 16-image batches, so it gets a fixed
# small iteration count; the index benchmarks use the default 1s budget.
# The bench runs land in a temp file first so a failing `go test -bench`
# (compile error, panic) fails the target instead of silently piping a
# partial stream into bench2json.
bench:
	@set -e; tmp=$$(mktemp); trap 'rm -f "$$tmp"' EXIT; \
	  $(GO) test ./internal/index -run '^$$' -bench . -benchmem > "$$tmp"; \
	  $(GO) test ./internal/core -run '^$$' -bench . -benchmem -benchtime 3x >> "$$tmp"; \
	  $(GO) run ./cmd/bench2json < "$$tmp" > BENCH_pipeline.json
	@echo "wrote BENCH_pipeline.json"
