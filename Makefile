# BEES build/verify entry points.
#
# tier1 is the seed gate every PR must keep green; tier2 adds vet and the
# race detector over the whole tree (the wire path's chaos tests rely on
# it to prove the client/server are race-clean).

GO ?= go

.PHONY: all help build tier1 tier2 fuzz bench benchdiff cover

all: tier1

# `make help` lists the verification entry points; `make cover` enforces
# a coverage floor on internal/features (the matching kernels), and
# `make benchdiff OLD=old.json` gates matcher benchmarks against a saved
# BENCH_pipeline.json baseline (see DESIGN.md, "Exact sub-linear
# matching", for the save-baseline/compare workflow).
help:
	@echo "make tier1      - build + vet cmd/examples + full test suite (the PR gate)"
	@echo "make tier2      - fuzz burst, vet everything, race-detector run"
	@echo "make fuzz       - FUZZTIME (default 10s) on each fuzz target"
	@echo "make bench      - micro-benchmarks -> BENCH_pipeline.json"
	@echo "make benchdiff  - compare gated benches: OLD=old.json [NEW=BENCH_pipeline.json]"
	@echo "make cover      - per-package coverage; floors: internal/features $(COVER_FLOOR_FEATURES)%, internal/imagelib $(COVER_FLOOR_IMAGELIB)%, internal/sim $(COVER_FLOOR_SIM)%, internal/blockstore $(COVER_FLOOR_BLOCKSTORE)%, internal/wal $(COVER_FLOOR_WAL)%, internal/cluster $(COVER_FLOOR_CLUSTER)%"

build:
	$(GO) build ./...

tier1: build
	$(GO) vet ./cmd/... ./examples/...
	$(GO) test ./...

# tier2's race run covers the telemetry registry's concurrency tests
# (internal/telemetry: parallel writers + snapshot readers) and the
# chaos tests — the partition test (client/partition_chaos_test.go)
# drives the full pipeline through a severed link plus a beesd restart,
# and the race detector is what makes them a proof rather than a smoke
# test. The explicit -timeout generously covers the sim/harness
# packages, whose CPU-bound lifetime simulations can exceed go test's
# default 10m per-package budget under the race detector's slowdown on
# small (single-core CI) machines; a genuine deadlock still fails, just
# later. tier2 also spends a short fuzz budget on each fuzz target.
tier2: fuzz
	$(GO) vet ./...
	$(GO) test -race -timeout 45m ./...

# Short fuzz burst over every fuzz target (their seed corpora always run
# as plain tests in tier1; this explores beyond them). Each target fuzzes
# for FUZZTIME; -run '^$' skips the package's unit tests so the whole
# budget goes to fuzzing.
FUZZTIME ?= 10s
fuzz:
	$(GO) test ./internal/wire -run '^$$' -fuzz FuzzReadFrame -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wire -run '^$$' -fuzz FuzzBlockManifest -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wire -run '^$$' -fuzz FuzzBlockPut -fuzztime $(FUZZTIME)
	$(GO) test ./internal/server -run '^$$' -fuzz FuzzLoadSnapshot -fuzztime $(FUZZTIME)
	$(GO) test ./internal/features -run '^$$' -fuzz FuzzMatchBinary -fuzztime $(FUZZTIME)
	$(GO) test ./internal/features -run '^$$' -fuzz FuzzExtractORB -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wal -run '^$$' -fuzz FuzzWALReplay -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wire -run '^$$' -fuzz FuzzShardRoute -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wire -run '^$$' -fuzz FuzzShardSync -fuzztime $(FUZZTIME)

# Index + pipeline micro-benchmarks with allocation stats, written as
# BENCH_pipeline.json. The raw `go test -bench` text is embedded under
# the "raw" key, so a baseline for benchstat is one jq away:
#   jq -r .raw BENCH_pipeline.json > old.txt && benchstat old.txt new.txt
# The pipeline benchmark runs whole 16-image batches, so it gets a fixed
# small iteration count; the index benchmarks use the default 1s budget.
# The bench runs land in a temp file first so a failing `go test -bench`
# (compile error, panic) fails the target instead of silently piping a
# partial stream into bench2json.
bench:
	@set -e; tmp=$$(mktemp); trap 'rm -f "$$tmp"' EXIT; \
	  $(GO) test ./internal/features -run '^$$' -bench 'Match|Jaccard|Prepare|Hamming|Extract|DetectFAST' -benchmem > "$$tmp"; \
	  $(GO) test ./internal/imagelib -run '^$$' -bench 'Encoded' -benchmem >> "$$tmp"; \
	  $(GO) test ./internal/index -run '^$$' -bench . -benchmem >> "$$tmp"; \
	  $(GO) test ./internal/core -run '^$$' -bench . -benchmem -benchtime 5x >> "$$tmp"; \
	  $(GO) test ./internal/blockstore -run '^$$' -bench . -benchmem >> "$$tmp"; \
	  $(GO) test ./internal/wal -run '^$$' -bench . -benchmem >> "$$tmp"; \
	  $(GO) test ./internal/cluster -run '^$$' -bench . -benchmem >> "$$tmp"; \
	  $(GO) run ./cmd/bench2json < "$$tmp" > BENCH_pipeline.json
	@echo "wrote BENCH_pipeline.json"

# Kernel-benchmark regression gate. Save a baseline before a kernel
# change (cp BENCH_pipeline.json old.json), re-run `make bench` after
# it, then `make benchdiff OLD=old.json`: any gated benchmark (Match /
# Jaccard / Prepare / BatchGraph / QueryMax, plus the extraction and
# codec hot path: Extract / DetectFAST / Encoded / Pipeline, plus the
# delta-upload hot path: Block / Resume, plus the durability hot path:
# WAL / Recovery, plus the cluster hot paths: Route / ShardSync) more
# than 15% slower in ns/op fails the target.
NEW ?= BENCH_pipeline.json
benchdiff:
	@test -n "$(OLD)" || { echo "usage: make benchdiff OLD=old.json [NEW=new.json]"; exit 2; }
	$(GO) run ./cmd/bench2json -compare $(OLD) $(NEW)

# Per-package coverage summary with floors on the hot-path kernels:
# internal/features holds the exact sub-linear matcher plus the
# extraction fast path and their oracles; internal/imagelib holds the
# codec/resize primitives the extraction arena reuses; internal/sim
# holds the lifetime/coverage experiments and the city-scale scenario
# harness whose determinism the replay gate depends on;
# internal/blockstore holds the content-addressed store the delta-upload
# protocol's exactly-once guarantees rest on; internal/wal holds the
# write-ahead log that crash consistency rests on — its torn-tail and
# repair paths are exactly the code that only runs when things go wrong,
# so coverage erosion there is silent until a real crash;
# internal/cluster holds the shard routing/replication layer, whose
# forwarding, failover, and catch-up branches likewise only run during
# faults. Each floor sits a few points under its measured line (features
# 94.6%, imagelib 94.3%, sim 97.1%, blockstore 95.6%, wal 95.5%,
# cluster 91.0%) to absorb counting drift without letting real erosion
# through.
COVER_FLOOR_FEATURES ?= 91
COVER_FLOOR_IMAGELIB ?= 85
COVER_FLOOR_SIM ?= 92
COVER_FLOOR_BLOCKSTORE ?= 90
COVER_FLOOR_WAL ?= 90
COVER_FLOOR_CLUSTER ?= 90
cover:
	@set -e; out=$$($(GO) test -cover ./... ) || { echo "$$out"; exit 1; }; \
	  echo "$$out"; \
	  check() { \
	    pct=$$(echo "$$out" | awk -v pkg="bees/$$1" '$$2 == pkg { for (i=1;i<=NF;i++) if ($$i ~ /^[0-9.]+%$$/) { sub(/%/,"",$$i); print $$i } }'); \
	    test -n "$$pct" || { echo "cover: no coverage line for $$1"; exit 1; }; \
	    awk -v p="$$pct" -v f="$$2" 'BEGIN { exit (p+0 < f+0) ? 1 : 0 }' || \
	      { echo "cover: $$1 at $$pct% is below the $$2% floor"; exit 1; }; \
	    echo "cover: $$1 at $$pct% (floor $$2%)"; \
	  }; \
	  check internal/features $(COVER_FLOOR_FEATURES); \
	  check internal/imagelib $(COVER_FLOOR_IMAGELIB); \
	  check internal/sim $(COVER_FLOOR_SIM); \
	  check internal/blockstore $(COVER_FLOOR_BLOCKSTORE); \
	  check internal/wal $(COVER_FLOOR_WAL); \
	  check internal/cluster $(COVER_FLOOR_CLUSTER)
