# BEES build/verify entry points.
#
# tier1 is the seed gate every PR must keep green; tier2 adds vet and the
# race detector over the whole tree (the wire path's chaos tests rely on
# it to prove the client/server are race-clean).

GO ?= go

.PHONY: all build tier1 tier2 fuzz

all: tier1

build:
	$(GO) build ./...

tier1: build
	$(GO) vet ./cmd/... ./examples/...
	$(GO) test ./...

# tier2's race run covers the telemetry registry's concurrency tests
# (internal/telemetry: parallel writers + snapshot readers) — the race
# detector is what makes them a proof rather than a smoke test.
tier2:
	$(GO) vet ./...
	$(GO) test -race ./...

# Short fuzz burst over the wire decoder (seed corpus always runs as part
# of tier1; this explores beyond it).
fuzz:
	$(GO) test ./internal/wire -fuzz FuzzReadFrame -fuzztime 30s
